#pragma once

#include <any>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "cost/cost_model.hpp"
#include "net/envelope.hpp"
#include "net/ids.hpp"
#include "net/messages.hpp"
#include "net/mobile_host.hpp"
#include "net/mss.hpp"
#include "net/search.hpp"
#include "net/stats.hpp"
#include "sim/rng.hpp"
#include "sim/scheduler.hpp"
#include "sim/trace.hpp"

namespace mobidist::net {

/// Where MHs sit before the simulation starts.
enum class InitialPlacement : std::uint8_t {
  kRoundRobin,  ///< mh i starts in cell i mod M
  kRandom,      ///< uniform random cell
  kAllInCell0,  ///< everyone piled into cell 0 (stress fixture)
};

/// Static configuration of one simulated system.
struct NetConfig {
  std::uint32_t num_mss = 4;   ///< M
  std::uint32_t num_mh = 16;   ///< N (paper: N >> M)
  SearchMode search = SearchMode::kOracle;
  LatencyConfig latency;
  InitialPlacement placement = InitialPlacement::kRoundRobin;
  std::uint64_t seed = 1;
  /// Oracle mode charges c_search even when the target happens to be
  /// local to the sender, matching the paper's unconditional C_search
  /// terms. Disable for "location caching" ablations.
  bool charge_search_for_local = true;
};

/// The §2 system model in one object: M MSSs on a reliable FIFO wired
/// mesh, N MHs reachable over per-cell FIFO wireless links, the
/// join/leave/handoff/disconnect/reconnect protocol, the search
/// substrate, and the cost ledger metering it all.
///
/// Single-threaded and deterministic: every run is a pure function of
/// (NetConfig, registered agents, workload).
class Network {
 public:
  explicit Network(NetConfig cfg);
  ~Network();

  Network(const Network&) = delete;
  Network& operator=(const Network&) = delete;

  // --- topology & components ----------------------------------------------

  [[nodiscard]] std::uint32_t num_mss() const noexcept { return cfg_.num_mss; }
  [[nodiscard]] std::uint32_t num_mh() const noexcept { return cfg_.num_mh; }
  [[nodiscard]] const NetConfig& config() const noexcept { return cfg_; }

  [[nodiscard]] Mss& mss(MssId id);
  [[nodiscard]] const Mss& mss(MssId id) const;
  [[nodiscard]] MobileHost& mh(MhId id);
  [[nodiscard]] const MobileHost& mh(MhId id) const;

  [[nodiscard]] sim::Scheduler& sched() noexcept { return sched_; }
  [[nodiscard]] sim::Rng& rng() noexcept { return rng_; }
  [[nodiscard]] sim::Trace& trace() noexcept { return trace_; }
  [[nodiscard]] cost::CostLedger& ledger() noexcept { return ledger_; }
  [[nodiscard]] const cost::CostLedger& ledger() const noexcept { return ledger_; }
  [[nodiscard]] NetStats& stats() noexcept { return stats_; }
  [[nodiscard]] const NetStats& stats() const noexcept { return stats_; }

  /// Fire on_start on every registered agent (MSS agents first, then MH
  /// agents, each in id order). Call after registering all agents and
  /// before running the scheduler.
  void start();

  /// Convenience: run the scheduler until it drains (with a safety event
  /// limit) and return events fired.
  std::uint64_t run(std::uint64_t event_limit = 50'000'000);

  // --- ground truth (setup & verification; does not charge costs) ---------

  /// Current MSS of a connected MH; kInvalidMss otherwise.
  [[nodiscard]] MssId current_mss_of(MhId id) const;
  [[nodiscard]] bool is_disconnected(MhId id) const;
  [[nodiscard]] bool is_in_transit(MhId id) const;

  // --- messaging (used by agents via the helpers in agent.hpp) ------------

  /// Wired MSS -> MSS send. FIFO per ordered pair; charges c_fixed unless
  /// control or self-addressed.
  void send_fixed(MssId from, MssId to, Envelope env);

  /// Wireless downlink to a MH that is local to `from` right now. If the
  /// MH leaves before the frame lands, the sending agent's
  /// on_local_send_failed is NOT invoked (there is none); instead the
  /// optional `on_fail` runs. Charges c_wireless + rx energy only on
  /// successful delivery.
  void send_wireless_downlink(MssId from, Envelope env, MhId to,
                              std::function<void()> on_fail = {});

  /// Wireless uplink from a connected MH to its current MSS. Always
  /// delivered (the MSS does not move). Charges c_wireless + tx energy
  /// unless control.
  void send_wireless_uplink(MhId from, Envelope env);

  /// Locate a MH (oracle or broadcast per config) and deliver `env` over
  /// the final wireless hop, retrying across moves. See SendPolicy for
  /// disconnect behaviour. `env.dst` must be the MH.
  void send_to_mh(MssId from, Envelope env, MhId to, SendPolicy policy);

  /// MH-to-MH relay entry point (wireless uplink leg is charged by the
  /// caller path); invoked by Mss when a kRelay envelope arrives.
  void relay_to_mh(MssId via, const msg::Relay& relay);

  /// Resolve a MH's current MSS. The callback receives (mss,
  /// disconnected): `mss` is the current cell, or the cell holding the
  /// "disconnected" flag when `disconnected` is true. Searches for
  /// in-transit MHs resolve when the MH joins its next cell.
  using LocateCallback = std::function<void(MssId, bool disconnected)>;
  void locate(MssId from, MhId target, LocateCallback cb);

  /// MH -> MSS join/reconnect transmission in the *new* cell (the MH is
  /// not yet local there, so this cannot ride the normal uplink).
  void submit_join(MhId from, MssId target, msg::Join join);

  /// Broadcast-search protocol handlers (invoked by Mss::dispatch).
  void handle_search_query(MssId at, const msg::SearchQuery& query);
  void handle_search_reply(const msg::SearchReply& reply);

 private:
  friend class Mss;
  friend class MobileHost;

  struct PendingLocate {
    MssId from;
    LocateCallback cb;
  };
  struct BroadcastSearch {
    MssId origin;
    MhId target;
    LocateCallback cb;
    std::uint32_t replies = 0;
    std::uint64_t round = 0;
    bool found = false;
    bool saw_disconnected = false;
    MssId disconnected_at = kInvalidMss;
  };

  // FIFO clamping: per ordered channel, arrivals never decrease.
  enum class ChannelType : std::uint8_t { kWired, kDownlink, kUplink };
  [[nodiscard]] sim::SimTime fifo_arrival(ChannelType type, std::uint32_t a, std::uint32_t b,
                                          sim::Duration latency);

  [[nodiscard]] sim::Duration sample(sim::Duration lo, sim::Duration hi);

  void deliver_wired(MssId to, Envelope env);
  void oracle_locate(MssId from, MhId target, LocateCallback cb);
  void broadcast_locate(MssId from, MhId target, LocateCallback cb);
  void broadcast_round(std::uint64_t token);

  /// Join bookkeeping shared by Mss::handle_join: flush searches pending
  /// on this MH and deliver messages parked while it was disconnected.
  void on_mh_rejoined(MhId mh, MssId at);

  void log(sim::TraceLevel level, std::string_view component, std::string text);

  NetConfig cfg_;
  sim::Scheduler sched_;
  sim::Rng rng_;
  sim::Trace trace_;
  cost::CostLedger ledger_;
  NetStats stats_;

  std::vector<std::unique_ptr<Mss>> mss_;
  std::vector<std::unique_ptr<MobileHost>> mh_;

  std::map<std::uint64_t, sim::SimTime> channel_clock_;
  std::map<MhId, std::vector<PendingLocate>> pending_locates_;
  /// Messages awaiting a disconnected MH's reconnect (eventual-delivery
  /// policy). Keyed by MH; delivered via its new MSS on rejoin.
  struct Parked {
    Envelope env;
  };
  std::map<MhId, std::vector<Parked>> parked_;
  std::map<std::uint64_t, BroadcastSearch> broadcast_;
  std::uint64_t next_search_token_ = 1;
  bool started_ = false;
};

}  // namespace mobidist::net
