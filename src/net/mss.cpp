#include "net/mss.hpp"

#include <stdexcept>
#include <utility>

#include "net/network.hpp"

namespace mobidist::net {

Mss::Mss(Network& net, MssId id) : net_(net), id_(id) {}

void Mss::register_agent(ProtocolId proto, std::shared_ptr<MssAgent> agent) {
  if (!agent) throw std::invalid_argument("Mss::register_agent: null agent");
  agent->attach(net_, id_, proto);
  if (!agents_.emplace(proto, std::move(agent)).second) {
    throw std::invalid_argument("Mss::register_agent: duplicate protocol " +
                                std::to_string(proto));
  }
}

MssAgent* Mss::agent(ProtocolId proto) const noexcept {
  const auto it = agents_.find(proto);
  return it == agents_.end() ? nullptr : it->second.get();
}

void Mss::start_agents() {
  for (auto& [proto, agent] : agents_) agent->on_start();
}

void Mss::dispatch(const Envelope& env) {
  if (env.proto == protocol::kSystem) {
    if (const auto* join = body_as<msg::Join>(env)) return handle_join(*join);
    if (const auto* leave = body_as<msg::Leave>(env)) return handle_leave(*leave);
    if (const auto* disc = body_as<msg::Disconnect>(env)) return handle_disconnect(*disc);
    if (const auto* req = body_as<msg::HandoffRequest>(env)) return handle_handoff_request(*req);
    if (const auto* state = body_as<msg::HandoffState>(env)) return handle_handoff_state(*state);
    if (const auto* query = body_as<msg::SearchQuery>(env)) {
      return net_.handle_search_query(id_, *query);
    }
    if (const auto* reply = body_as<msg::SearchReply>(env)) {
      return net_.handle_search_reply(*reply);
    }
    if (const auto* notice = body_as<msg::UnreachableNotice>(env)) {
      if (auto* target = agent(notice->proto)) target->on_mh_unreachable(notice->mh, notice->body);
      return;
    }
    if (const auto* find = body_as<msg::FindDisconnect>(env)) {
      msg::FindDisconnectReply reply{find->mh, id_, disconnected_.contains(find->mh)};
      net_.send_wired(id_, find->origin, make_control(NodeRef(id_), NodeRef(find->origin), reply));
      return;
    }
    if (const auto* found = body_as<msg::FindDisconnectReply>(env)) {
      if (found->had_flag) {
        // Resume the reconnect handoff now that we know where the MH
        // disconnected.
        net_.emit({.kind = obs::EventKind::kHandoffBegin,
                   .entity = entity_of(id_),
                   .peer = entity_of(found->from),
                   .arg = index(found->mh),
                   .detail = "reconnect"});
        awaiting_handoff_in_.insert(found->mh);
        msg::HandoffRequest req{found->mh, id_, /*clears_disconnect=*/true};
        net_.send_wired(id_, found->from, make_control(NodeRef(id_), NodeRef(found->from), req));
      }
      return;
    }
    throw std::logic_error("Mss::dispatch: unknown control message");
  }
  if (env.proto == protocol::kRelay) return handle_relay(env);
  if (auto* target = agent(env.proto)) {
    target->on_message(env);
    return;
  }
  throw std::logic_error("Mss::dispatch: no agent for protocol " + std::to_string(env.proto) +
                         " at " + to_string(id_));
}

void Mss::handle_join(const msg::Join& join) {
  if (net_.trace_enabled(sim::TraceLevel::kDebug)) {
    net_.log(sim::TraceLevel::kDebug, "mss",
             to_string(id_) + (join.reconnect ? " reconnect " : " join ") + to_string(join.mh) +
                 " prev=" + to_string(join.prev_mss));
  }
  local_.insert(join.mh);
  net_.mh(join.mh).complete_join(id_);
  arrival_seq_[join.mh] = net_.mh(join.mh).joins_completed();
  auto& stats = net_.stats();
  ++stats.joins;
  if (join.reconnect) {
    ++stats.reconnects;
    net_.emit({.kind = obs::EventKind::kReconnect,
               .entity = entity_of(join.mh),
               .peer = entity_of(id_)});
  }

  const bool needs_handoff = join.prev_mss != kInvalidMss && join.prev_mss != id_;
  if (needs_handoff) {
    ++stats.handoffs;
    net_.emit({.kind = obs::EventKind::kHandoffBegin,
               .entity = entity_of(id_),
               .peer = entity_of(join.prev_mss),
               .arg = index(join.mh)});
    awaiting_handoff_in_.insert(join.mh);
    msg::HandoffRequest req{join.mh, id_, join.reconnect,
                            net_.mh(join.mh).joins_completed()};
    net_.send_wired(id_, join.prev_mss, make_control(NodeRef(id_), NodeRef(join.prev_mss), req));
  } else if (join.reconnect && join.prev_mss == kInvalidMss) {
    // The MH could not supply its previous MSS: query every fixed host.
    for (std::uint32_t i = 0; i < net_.num_mss(); ++i) {
      const auto dest = static_cast<MssId>(i);
      if (dest == id_) continue;
      msg::FindDisconnect find{join.mh, id_};
      net_.send_wired(id_, dest, make_control(NodeRef(id_), NodeRef(dest), find));
    }
  }

  for (auto& [proto, agent] : agents_) {
    agent->on_mh_joined(join.mh, join.prev_mss);
    if (join.reconnect) agent->on_mh_reconnected(join.mh, join.prev_mss);
  }
  net_.on_mh_rejoined(join.mh, id_);
}

void Mss::handle_leave(const msg::Leave& leave) {
  // A handoff request from the next cell may have overtaken this leave;
  // in that case the MH is already gone and the leave is stale.
  if (!local_.contains(leave.mh)) return;
  // A leave retransmitted over the lossy wireless hop can also trail the
  // MH's re-join into this same cell (FIFO clamps the late copy behind
  // the join): the recorded arrival epoch being newer than the departure
  // this leave describes means the member here is alive, not leaving.
  if (const auto it = arrival_seq_.find(leave.mh);
      it != arrival_seq_.end() && it->second > leave.join_seq) {
    return;
  }
  if (net_.trace_enabled(sim::TraceLevel::kDebug)) {
    net_.log(sim::TraceLevel::kDebug, "mss", to_string(id_) + " leave " + to_string(leave.mh));
  }
  ++net_.stats().leaves;
  remove_local(leave.mh);
}

void Mss::handle_disconnect(const msg::Disconnect& disc) {
  if (!local_.contains(disc.mh)) return;
  // Same stale-retransmission guard as handle_leave: never set the
  // disconnected flag for a member whose re-join postdates this message.
  if (const auto it = arrival_seq_.find(disc.mh);
      it != arrival_seq_.end() && it->second > disc.join_seq) {
    return;
  }
  net_.emit({.kind = obs::EventKind::kDisconnect,
             .entity = entity_of(disc.mh),
             .peer = entity_of(id_)});
  ++net_.stats().disconnects;
  // Per §2: delete from the local list but set the "disconnected" flag;
  // the MH is still *located* here for search purposes, so agents get
  // on_mh_disconnected rather than on_mh_left.
  local_.erase(disc.mh);
  disconnected_.insert(disc.mh);
  for (auto& [proto, agent] : agents_) agent->on_mh_disconnected(disc.mh);
}

void Mss::handle_handoff_request(const msg::HandoffRequest& req) {
  if (local_.contains(req.mh)) {
    const auto it = arrival_seq_.find(req.mh);
    const std::uint64_t arrived = it == arrival_seq_.end() ? 0 : it->second;
    if (req.join_seq > arrived) {
      // The request overtook the MH's leave(): treat it as the leave.
      ++net_.stats().leaves;
      remove_local(req.mh);
    }
    // Otherwise the MH has already bounced back here (its re-arrival is
    // newer than the departure this request describes): keep it local
    // but still answer with state so the requester can unblock.
  }
  if (req.clears_disconnect && disconnected_.erase(req.mh) > 0) {
    for (auto& [proto, agent] : agents_) {
      agent->on_disconnected_mh_migrated(req.mh, req.new_mss);
    }
  }
  if (awaiting_handoff_in_.contains(req.mh)) {
    // We have not yet received this MH's state from *its* previous MSS;
    // answering now would drop that state. Defer until it lands.
    deferred_handoff_requests_[req.mh] = req;
    return;
  }
  send_handoff_state(req.mh, req.new_mss);
}

void Mss::send_handoff_state(MhId mh, MssId new_mss) {
  msg::HandoffState state{mh, id_, {}};
  for (auto& [proto, agent] : agents_) {
    std::any blob = agent->on_handoff_out(mh);
    if (blob.has_value()) state.state.emplace(proto, std::move(blob));
  }
  net_.send_wired(id_, new_mss, make_control(NodeRef(id_), NodeRef(new_mss), std::move(state)));
}

void Mss::handle_handoff_state(const msg::HandoffState& state) {
  net_.emit({.kind = obs::EventKind::kHandoffEnd,
             .entity = entity_of(id_),
             .peer = entity_of(state.prev_mss),
             .arg = index(state.mh)});
  awaiting_handoff_in_.erase(state.mh);
  for (const auto& [proto, blob] : state.state) {
    if (auto* target = agent(proto)) target->on_handoff_in(state.mh, state.prev_mss, blob);
  }
  if (auto it = deferred_handoff_requests_.find(state.mh);
      it != deferred_handoff_requests_.end()) {
    const msg::HandoffRequest req = it->second;
    deferred_handoff_requests_.erase(it);
    send_handoff_state(req.mh, req.new_mss);
  }
}

void Mss::handle_relay(const Envelope& env) {
  const auto* relay = body_as<msg::Relay>(env);
  if (relay == nullptr) throw std::logic_error("Mss::handle_relay: bad relay body");
  net_.relay_to_mh(id_, *relay);
}

void Mss::remove_local(MhId mh) {
  local_.erase(mh);
  for (auto& [proto, agent] : agents_) agent->on_mh_left(mh);
}

}  // namespace mobidist::net
