#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/envelope.hpp"
#include "net/ids.hpp"
#include "obs/events.hpp"
#include "sim/scheduler.hpp"
#include "sim/time.hpp"

namespace mobidist::net {

/// Tuning knobs for the wired-backbone formation (batching) layer,
/// modeled on RPC item/packet formation machinery: outbound wired
/// messages park in a per-(src,dst) queue and coalesce into packets.
/// A packet is cut when any trigger fires:
///
///   - count:    the queue reaches max_packet_msgs messages;
///   - bytes:    the queue's estimated wire size reaches max_packet_bytes
///               (a single oversized message still forms a 1-message
///               packet — messages are never split);
///   - deadline: flush_deadline sim-time has elapsed since the oldest
///               queued message arrived;
///   - barrier:  the substrate needs channel order pinned down before an
///               out-of-band send on the same channel (e.g. the
///               search/forward path), so it force-flushes the pair.
///
/// flush_deadline == 0 disables the layer entirely (passthrough): every
/// message is its own packet and the wire path is byte-identical to the
/// unbatched substrate, which is what the golden traces pin.
struct FormationConfig {
  /// Flush when this many messages have coalesced. Must be >= 1.
  std::uint32_t max_packet_msgs = 16;
  /// Flush when the estimated packet size reaches this many bytes.
  std::uint32_t max_packet_bytes = 4096;
  /// Maximum sim-time a message may wait in a formation queue; 0 means
  /// passthrough (no batching at all).
  sim::Duration flush_deadline = 0;

  /// True when the layer is disabled and sends bypass formation.
  [[nodiscard]] constexpr bool passthrough() const noexcept { return flush_deadline == 0; }
};

/// Nominal per-message framing overhead (headers, addressing) used by
/// the wire-size estimate; the model does not serialize for real.
inline constexpr std::size_t kWireHeaderBytes = 24;

/// Estimated on-wire size of one message: fixed framing plus the stored
/// payload type's size. Deterministic and cheap — good enough to drive
/// the bytes trigger, not a serialization format.
[[nodiscard]] inline std::size_t wire_size(const Envelope& env) noexcept {
  return kWireHeaderBytes + env.body.payload_size();
}

/// Per-(src,dst) formation queues for the wired mesh.
///
/// The layer owns queueing and trigger policy only; the substrate
/// supplies a transmit callback that charges the ledger, samples one
/// latency for the whole packet and schedules its arrival. Timers are
/// epoch-guarded: each flush bumps the pair's epoch, so a deadline timer
/// armed for an already-flushed generation finds a stale epoch and does
/// nothing (timers are never cancelled, just disarmed by the epoch).
class FormationLayer {
 public:
  /// One queued message plus the identity it already announced to the
  /// event stream (its kSend is emitted at enqueue time, so per-message
  /// causality is recorded even though the wire sees one packet).
  struct Item {
    Envelope env;                 ///< the message, ready to deliver
    obs::EventId send_id = 0;     ///< kSend emitted when it was enqueued
    std::size_t bytes = 0;        ///< wire_size() at enqueue time
  };

  /// A formed packet handed to the transmit callback.
  struct Packet {
    MssId from = kInvalidMss;     ///< sending MSS
    MssId to = kInvalidMss;       ///< receiving MSS
    std::vector<Item> items;      ///< coalesced messages, send order
    std::size_t bytes = 0;        ///< summed wire_size of the items
    const char* trigger = "";     ///< "count" | "bytes" | "deadline" | "barrier"
  };

  /// Transmit callback: put one formed packet on the wire.
  using TransmitFn = std::function<void(Packet)>;

  /// cfg must have max_packet_msgs >= 1; sched outlives the layer.
  FormationLayer(FormationConfig cfg, sim::Scheduler& sched, TransmitFn transmit)
      : cfg_(cfg), sched_(sched), transmit_(std::move(transmit)) {}

  /// Park one message on the (from,to) queue; flushes synchronously if
  /// the count or bytes trigger fires, otherwise arms the deadline timer
  /// when the queue was empty.
  void enqueue(MssId from, MssId to, Item item);

  /// Barrier: force-flush the (from,to) queue now (no-op when empty).
  /// `trigger` labels the resulting packet event ("barrier" normally).
  void flush_pair(MssId from, MssId to, const char* trigger);

  /// Flush every non-empty queue in deterministic (key) order; used to
  /// drain at quiesce points and in tests.
  void flush_all(const char* trigger);

  /// Messages accepted by enqueue() so far.
  [[nodiscard]] std::uint64_t msgs_enqueued() const noexcept { return msgs_enqueued_; }
  /// Packets handed to the transmit callback so far.
  [[nodiscard]] std::uint64_t packets_formed() const noexcept { return packets_formed_; }
  /// Packets cut by the count/bytes triggers.
  [[nodiscard]] std::uint64_t size_flushes() const noexcept { return size_flushes_; }
  /// Packets cut by the deadline timer.
  [[nodiscard]] std::uint64_t deadline_flushes() const noexcept { return deadline_flushes_; }
  /// Packets cut by flush_pair / flush_all barriers.
  [[nodiscard]] std::uint64_t barrier_flushes() const noexcept { return barrier_flushes_; }
  /// Messages currently parked across all queues.
  [[nodiscard]] std::size_t pending_msgs() const noexcept { return pending_msgs_; }

 private:
  struct Queue {
    std::vector<Item> items;
    std::size_t bytes = 0;
    std::uint64_t epoch = 0;  // bumped by every flush; disarms stale timers
  };

  [[nodiscard]] static std::uint64_t key_of(MssId from, MssId to) noexcept {
    return (static_cast<std::uint64_t>(index(from)) << 32) | index(to);
  }

  void flush_queue(Queue& queue, MssId from, MssId to, const char* trigger);

  FormationConfig cfg_;
  sim::Scheduler& sched_;
  TransmitFn transmit_;
  // std::map so flush_all drains pairs in a deterministic order.
  std::map<std::uint64_t, Queue> queues_;
  std::uint64_t msgs_enqueued_ = 0;
  std::uint64_t packets_formed_ = 0;
  std::uint64_t size_flushes_ = 0;
  std::uint64_t deadline_flushes_ = 0;
  std::uint64_t barrier_flushes_ = 0;
  std::size_t pending_msgs_ = 0;
};

}  // namespace mobidist::net
