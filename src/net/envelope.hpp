#pragma once

#include <cstdint>
#include <utility>

#include "net/body.hpp"
#include "net/ids.hpp"

namespace mobidist::net {

/// Protocols multiplexed over the substrate. Agents register under one
/// of these ids; the substrate dispatches inbound envelopes by id.
using ProtocolId = std::uint16_t;

namespace protocol {
/// Substrate control traffic (join/leave/handoff/search). Never charged
/// to the cost ledger: the paper's cost analyses meter algorithm
/// messages only.
inline constexpr ProtocolId kSystem = 0;
/// MH-to-MH relay service (used by L1/R1, which run directly on MHs).
inline constexpr ProtocolId kRelay = 1;

inline constexpr ProtocolId kMutexL1 = 10;
inline constexpr ProtocolId kMutexL2 = 11;
inline constexpr ProtocolId kMutexR1 = 12;
inline constexpr ProtocolId kMutexR2 = 13;
inline constexpr ProtocolId kMutexPathRev = 14;

inline constexpr ProtocolId kGroupLocation = 20;
inline constexpr ProtocolId kGroupData = 21;

inline constexpr ProtocolId kProxy = 30;

/// First id available to user-defined protocols.
inline constexpr ProtocolId kUserBase = 100;
}  // namespace protocol

/// A message in flight. `body` holds a protocol-defined value struct
/// (type-erased in a small-buffer Body — no heap traffic for typical
/// payloads); receivers read it back with body_as(). `control` exempts
/// substrate bookkeeping traffic from cost accounting.
struct Envelope {
  ProtocolId proto = protocol::kSystem;
  NodeRef src;
  NodeRef dst;
  Body body;
  bool control = false;
};

/// Convenience factory for an algorithm (cost-charged) envelope.
template <typename T>
[[nodiscard]] Envelope make_envelope(ProtocolId proto, NodeRef src, NodeRef dst, T body) {
  return Envelope{proto, src, dst, Body(std::move(body)), /*control=*/false};
}

/// Convenience factory for a substrate control envelope (not charged).
template <typename T>
[[nodiscard]] Envelope make_control(NodeRef src, NodeRef dst, T body) {
  return Envelope{protocol::kSystem, src, dst, Body(std::move(body)), /*control=*/true};
}

/// Extract a typed body; returns nullptr on type mismatch.
template <typename T>
[[nodiscard]] const T* body_as(const Envelope& env) noexcept {
  return env.body.get<T>();
}

}  // namespace mobidist::net
