#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mobidist::net {

/// Identifier of a mobile support station (fixed host). The paper uses
/// M for their count; ids are dense indices [0, M).
enum class MssId : std::uint32_t {};

/// Identifier of a mobile host. The paper uses N for their count
/// (N >> M); ids are dense indices [0, N).
enum class MhId : std::uint32_t {};

inline constexpr MssId kInvalidMss{0xFFFFFFFFu};
inline constexpr MhId kInvalidMh{0xFFFFFFFFu};

/// Dense array index of an MSS id.
[[nodiscard]] constexpr std::uint32_t index(MssId id) noexcept {
  return static_cast<std::uint32_t>(id);
}
/// Dense array index of a MH id.
[[nodiscard]] constexpr std::uint32_t index(MhId id) noexcept {
  return static_cast<std::uint32_t>(id);
}

/// "mss:3", or "mss:?" for kInvalidMss.
[[nodiscard]] inline std::string to_string(MssId id) {
  return id == kInvalidMss ? "mss:?" : "mss:" + std::to_string(index(id));
}
/// "mh:7", or "mh:?" for kInvalidMh.
[[nodiscard]] inline std::string to_string(MhId id) {
  return id == kInvalidMh ? "mh:?" : "mh:" + std::to_string(index(id));
}

/// Reference to either kind of host; the address form used on envelopes.
struct NodeRef {
  /// Which kind of endpoint this refers to; kNone is "no address".
  enum class Kind : std::uint8_t { kNone, kMss, kMh };

  Kind kind = Kind::kNone;
  std::uint32_t idx = 0;

  constexpr NodeRef() = default;
  constexpr NodeRef(MssId id) noexcept : kind(Kind::kMss), idx(index(id)) {}  // NOLINT(google-explicit-constructor)
  constexpr NodeRef(MhId id) noexcept : kind(Kind::kMh), idx(index(id)) {}    // NOLINT(google-explicit-constructor)

  /// True when this refers to a fixed host (MSS).
  [[nodiscard]] constexpr bool is_mss() const noexcept { return kind == Kind::kMss; }
  /// True when this refers to a mobile host.
  [[nodiscard]] constexpr bool is_mh() const noexcept { return kind == Kind::kMh; }
  /// The MSS id; only meaningful when is_mss().
  [[nodiscard]] constexpr MssId mss() const noexcept { return static_cast<MssId>(idx); }
  /// The MH id; only meaningful when is_mh().
  [[nodiscard]] constexpr MhId mh() const noexcept { return static_cast<MhId>(idx); }

  friend constexpr bool operator==(NodeRef, NodeRef) = default;
};

/// "mss:3" / "mh:7" / "none".
[[nodiscard]] inline std::string to_string(NodeRef ref) {
  switch (ref.kind) {
    case NodeRef::Kind::kMss: return to_string(ref.mss());
    case NodeRef::Kind::kMh: return to_string(ref.mh());
    case NodeRef::Kind::kNone: break;
  }
  return "none";
}

}  // namespace mobidist::net

/// Hash support so MssId can key unordered containers.
template <>
struct std::hash<mobidist::net::MssId> {
  std::size_t operator()(mobidist::net::MssId id) const noexcept {
    return std::hash<std::uint32_t>{}(mobidist::net::index(id));
  }
};

/// Hash support so MhId can key unordered containers.
template <>
struct std::hash<mobidist::net::MhId> {
  std::size_t operator()(mobidist::net::MhId id) const noexcept {
    return std::hash<std::uint32_t>{}(mobidist::net::index(id));
  }
};
