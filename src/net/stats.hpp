#pragma once

#include "obs/metrics.hpp"

namespace mobidist::net {

/// Substrate-level counters, complementary to the cost ledger: these
/// track protocol events rather than charged messages.
///
/// Every field is a registry-backed obs::Counter living in the owning
/// Network's metrics registry (names below), so bench artifacts can
/// serialize them without any extra plumbing. Field access is unchanged
/// from the old plain-struct days: `++stats.joins` and comparisons
/// against integers both still work (Counter increments in place and
/// converts implicitly to its value).
struct NetStats {
  explicit NetStats(obs::Registry& registry)
      : joins(registry.counter("net.joins")),
        leaves(registry.counter("net.leaves")),
        disconnects(registry.counter("net.disconnects")),
        reconnects(registry.counter("net.reconnects")),
        handoffs(registry.counter("net.handoffs")),
        searches_started(registry.counter("net.searches_started")),
        searches_pended(registry.counter("net.searches_pended")),
        delivery_retries(registry.counter("net.delivery_retries")),
        unreachable_notices(registry.counter("net.unreachable_notices")),
        queued_for_reconnect(registry.counter("net.queued_for_reconnect")),
        doze_interruptions(registry.counter("net.doze_interruptions")),
        control_msgs(registry.counter("net.control_msgs")),
        relay_msgs(registry.counter("net.relay_msgs")),
        relay_reordered(registry.counter("net.relay_reordered")),
        retransmissions(registry.counter("net.retransmissions")),
        dup_suppressed(registry.counter("net.dup_suppressed")) {}

  obs::Counter& joins;
  obs::Counter& leaves;
  obs::Counter& disconnects;
  obs::Counter& reconnects;
  obs::Counter& handoffs;
  obs::Counter& searches_started;
  obs::Counter& searches_pended;      ///< target was in transit; resolved on join
  obs::Counter& delivery_retries;     ///< MH moved mid-flight; send_to_mh retried
  obs::Counter& unreachable_notices;  ///< sends that hit a disconnected MH
  obs::Counter& queued_for_reconnect;
  obs::Counter& doze_interruptions;   ///< deliveries that woke a dozing MH
  obs::Counter& control_msgs;         ///< substrate messages (not cost-charged)
  obs::Counter& relay_msgs;           ///< MH-to-MH relayed payloads
  obs::Counter& relay_reordered;      ///< relay payloads buffered for FIFO
  obs::Counter& retransmissions;      ///< wireless frames re-sent after a drop
  obs::Counter& dup_suppressed;       ///< duplicate wireless frames discarded
};

}  // namespace mobidist::net
