#pragma once

#include <cstdint>

namespace mobidist::net {

/// Substrate-level counters, complementary to the cost ledger: these
/// track protocol events rather than charged messages.
struct NetStats {
  std::uint64_t joins = 0;
  std::uint64_t leaves = 0;
  std::uint64_t disconnects = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t handoffs = 0;
  std::uint64_t searches_started = 0;
  std::uint64_t searches_pended = 0;     ///< target was in transit; resolved on join
  std::uint64_t delivery_retries = 0;    ///< MH moved mid-flight; send_to_mh retried
  std::uint64_t unreachable_notices = 0; ///< sends that hit a disconnected MH
  std::uint64_t queued_for_reconnect = 0;
  std::uint64_t doze_interruptions = 0;  ///< deliveries that woke a dozing MH
  std::uint64_t control_msgs = 0;        ///< substrate messages (not cost-charged)
  std::uint64_t relay_msgs = 0;          ///< MH-to-MH relayed payloads
  std::uint64_t relay_reordered = 0;     ///< relay payloads buffered for FIFO
};

}  // namespace mobidist::net
