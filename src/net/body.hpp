#pragma once

#include <any>
#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mobidist::net {

namespace detail {
/// One byte per payload type; its address is the type's identity (an
/// inline variable, so every translation unit sees the same address —
/// cheaper than RTTI and immune to typeid-across-DSO surprises).
template <typename T>
inline constexpr char kBodyTypeTag = 0;
}  // namespace detail

/// Type-erased message payload with small-buffer storage — the
/// `std::any` of Envelope bodies, minus the heap allocation for every
/// payload over a pointer in size. Every substrate control message and
/// most algorithm messages fit the inline buffer, so copying an Envelope
/// through the retry/locate paths is a flat copy; oversized payloads
/// (e.g. a Relay wrapper nesting another Body) fall back to one heap
/// allocation, exactly matching the old std::any cost.
///
/// Copyable because Envelopes are copied (retransmission keeps the
/// original while a copy rides the channel); payload types must be
/// copy-constructible like they had to be under std::any.
class Body {
 public:
  /// Inline storage size. Covers the largest substrate control message
  /// (HandoffState, ~56 bytes) with a little headroom.
  static constexpr std::size_t kInlineCapacity = 64;

  Body() noexcept = default;

  /// Wrap a payload value. Storing a std::any (or a Body inside a Body)
  /// is almost always an accidental double-wrap that would make every
  /// body_as<T>() miss, so it is rejected at compile time.
  template <typename T>
    requires(!std::is_same_v<std::remove_cvref_t<T>, Body>)
  Body(T&& value) {  // NOLINT(google-explicit-constructor): mirrors std::any
    using Stored = std::decay_t<T>;
    static_assert(!std::is_same_v<Stored, std::any>,
                  "store the payload type directly, not a std::any wrapper");
    static_assert(std::is_copy_constructible_v<Stored>,
                  "Envelope payloads must be copyable");
    if constexpr (fits_inline<Stored>()) {
      ::new (static_cast<void*>(buf_)) Stored(std::forward<T>(value));
      ops_ = &kInlineOps<Stored>;
    } else {
      heap_ = new Stored(std::forward<T>(value));
      ops_ = &kHeapOps<Stored>;
    }
  }

  Body(const Body& other) {
    if (other.ops_ != nullptr) other.ops_->copy(*this, other);
  }

  Body(Body&& other) noexcept { steal(other); }

  Body& operator=(const Body& other) {
    if (this != &other) {
      Body tmp(other);  // copy may throw: build aside, then commit
      reset();
      steal(tmp);
    }
    return *this;
  }

  Body& operator=(Body&& other) noexcept {
    if (this != &other) {
      reset();
      steal(other);
    }
    return *this;
  }

  ~Body() { reset(); }

  /// Destroy the held payload (if any); the Body becomes empty.
  void reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(*this);
      ops_ = nullptr;
    }
  }

  /// True when a payload is held (a default-constructed Body is empty).
  [[nodiscard]] bool has_value() const noexcept { return ops_ != nullptr; }
  /// Size in bytes of the held payload type (0 when empty). Used by the
  /// formation layer to estimate on-wire packet sizes.
  [[nodiscard]] std::size_t payload_size() const noexcept {
    return ops_ == nullptr ? 0 : ops_->size;
  }
  [[nodiscard]] explicit operator bool() const noexcept { return has_value(); }

  /// Typed access; nullptr when empty or holding a different type.
  template <typename T>
  [[nodiscard]] const T* get() const noexcept {
    using Stored = std::remove_cvref_t<T>;
    if (ops_ == nullptr || ops_->type != &detail::kBodyTypeTag<Stored>) return nullptr;
    if (ops_->heap_stored) return static_cast<const Stored*>(heap_);
    return inline_target<Stored>();
  }

 private:
  struct Ops {
    void (*copy)(Body& dst, const Body& src);       // dst is empty
    void (*relocate)(Body& dst, Body& src) noexcept;  // dst empty; src left empty
    void (*destroy)(Body& self) noexcept;
    const void* type;
    std::size_t size;
    bool heap_stored;
  };

  template <typename T>
  [[nodiscard]] static constexpr bool fits_inline() noexcept {
    return sizeof(T) <= kInlineCapacity && alignof(T) <= alignof(std::max_align_t) &&
           std::is_nothrow_move_constructible_v<T>;
  }

  template <typename T>
  [[nodiscard]] T* inline_target() noexcept {
    return std::launder(reinterpret_cast<T*>(buf_));
  }
  template <typename T>
  [[nodiscard]] const T* inline_target() const noexcept {
    return std::launder(reinterpret_cast<const T*>(buf_));
  }

  template <typename T>
  static void inline_copy(Body& dst, const Body& src) {
    ::new (static_cast<void*>(dst.buf_)) T(*src.inline_target<T>());
    dst.ops_ = src.ops_;  // only after the construct: copy may throw
  }
  template <typename T>
  static void inline_relocate(Body& dst, Body& src) noexcept {
    ::new (static_cast<void*>(dst.buf_)) T(std::move(*src.inline_target<T>()));
    src.inline_target<T>()->~T();
  }
  template <typename T>
  static void inline_destroy(Body& self) noexcept {
    self.inline_target<T>()->~T();
  }

  template <typename T>
  static void heap_copy(Body& dst, const Body& src) {
    dst.heap_ = new T(*static_cast<const T*>(src.heap_));
    dst.ops_ = src.ops_;
  }
  static void heap_relocate(Body& dst, Body& src) noexcept {
    dst.heap_ = src.heap_;
    src.heap_ = nullptr;
  }
  template <typename T>
  static void heap_destroy(Body& self) noexcept {
    delete static_cast<T*>(self.heap_);
  }

  template <typename T>
  static constexpr Ops kInlineOps = {&inline_copy<T>, &inline_relocate<T>,
                                     &inline_destroy<T>, &detail::kBodyTypeTag<T>,
                                     sizeof(T), /*heap_stored=*/false};
  template <typename T>
  static constexpr Ops kHeapOps = {&heap_copy<T>, &heap_relocate, &heap_destroy<T>,
                                   &detail::kBodyTypeTag<T>, sizeof(T),
                                   /*heap_stored=*/true};

  void steal(Body& other) noexcept {
    ops_ = other.ops_;
    if (ops_ != nullptr) {
      ops_->relocate(*this, other);
      other.ops_ = nullptr;
    }
  }

  union {
    alignas(std::max_align_t) unsigned char buf_[kInlineCapacity];
    void* heap_;
  };
  const Ops* ops_ = nullptr;
};

}  // namespace mobidist::net
