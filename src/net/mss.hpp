#pragma once

#include <any>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "net/agent.hpp"
#include "net/envelope.hpp"
#include "net/ids.hpp"
#include "net/messages.hpp"

namespace mobidist::net {

class Network;

/// A mobile support station (fixed host). Owns the cell bookkeeping of
/// Section 2: the local-MH list, per-MH "disconnected" flags, and the
/// join/leave/handoff control protocol. Algorithm behaviour is supplied
/// by registered MssAgent instances.
class Mss {
 public:
  Mss(Network& net, MssId id);

  Mss(const Mss&) = delete;
  Mss& operator=(const Mss&) = delete;

  /// This station's identity.
  [[nodiscard]] MssId id() const noexcept { return id_; }

  /// Register an agent for `proto`. Must happen before Network::start().
  void register_agent(ProtocolId proto, std::shared_ptr<MssAgent> agent);

  /// The agent registered for `proto`; nullptr if none.
  [[nodiscard]] MssAgent* agent(ProtocolId proto) const noexcept;

  /// MHs currently local to this cell.
  [[nodiscard]] const std::set<MhId>& local_mhs() const noexcept { return local_; }
  /// True when `mh` is currently local to this cell.
  [[nodiscard]] bool is_local(MhId mh) const noexcept { return local_.contains(mh); }

  /// MHs that disconnected while local to this cell and have not yet
  /// reconnected elsewhere.
  [[nodiscard]] bool has_disconnected_flag(MhId mh) const noexcept {
    return disconnected_.contains(mh);
  }
  /// All MHs carrying a "disconnected" flag in this cell.
  [[nodiscard]] const std::set<MhId>& disconnected_flags() const noexcept {
    return disconnected_;
  }

  /// Inbound envelope dispatch (wired or wireless). Substrate protocols
  /// (kSystem control, kRelay) are handled here; everything else goes to
  /// the registered agent.
  void dispatch(const Envelope& env);

  /// Fire on_start on all registered agents (called by Network::start).
  void start_agents();

  /// Direct placement during setup (no protocol traffic); also used by
  /// tests to build fixtures.
  void place_local(MhId mh) { local_.insert(mh); }

 private:
  friend class Network;

  void handle_join(const msg::Join& join);
  void handle_leave(const msg::Leave& leave);
  void handle_disconnect(const msg::Disconnect& disc);
  void handle_handoff_request(const msg::HandoffRequest& req);
  void handle_handoff_state(const msg::HandoffState& state);
  void handle_relay(const Envelope& env);

  /// Remove a MH from the local list with agent notification; used by
  /// leave processing and by handoff requests that overtake the leave.
  void remove_local(MhId mh);

  /// Collect per-protocol handoff state and reply to `new_mss`.
  void send_handoff_state(MhId mh, MssId new_mss);

  Network& net_;
  MssId id_;
  std::set<MhId> local_;
  std::set<MhId> disconnected_;
  /// joins_completed() value at each MH's latest arrival here; used to
  /// detect handoff requests that a returning MH has already outrun.
  std::map<MhId, std::uint64_t> arrival_seq_;
  // Deterministic iteration order matters: joins/leaves notify agents in
  // ascending protocol id.
  std::map<ProtocolId, std::shared_ptr<MssAgent>> agents_;
  // Handoff races: a HandoffRequest that arrives while we are still
  // waiting for this MH's state from *its* previous MSS is deferred
  // until that state lands.
  std::set<MhId> awaiting_handoff_in_;
  std::map<MhId, msg::HandoffRequest> deferred_handoff_requests_;
};

}  // namespace mobidist::net
