#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace mobidist::net {

/// How the substrate resolves "which MSS currently serves MH h?".
enum class SearchMode : std::uint8_t {
  /// Abstract search, exactly as the paper's cost model: one c_search
  /// charge covers locating the MH *and* forwarding the message to its
  /// current local MSS. Resolution consults ground truth after a
  /// configurable latency; a search for an in-transit MH completes when
  /// the MH joins its next cell (the model's eventual-delivery rule).
  kOracle,
  /// The paper's stated worst case: the source MSS really queries each
  /// of the other M-1 MSSs with control messages that ARE charged as
  /// fixed-network messages; negative rounds (target in transit) retry
  /// after a timeout.
  kBroadcast,
};

/// Latency knobs. All uniform in [min, max]; set min == max for the
/// deterministic runs the formula-agreement tests use. FIFO per channel
/// is enforced regardless of sampling (arrivals are clamped to be
/// non-decreasing per ordered channel).
struct LatencyConfig {
  sim::Duration wired_min = 2;
  sim::Duration wired_max = 10;
  sim::Duration wireless_min = 1;
  sim::Duration wireless_max = 3;
  /// Extra latency of one oracle search (locate + forward leg).
  sim::Duration search_min = 3;
  sim::Duration search_max = 12;
  /// Broadcast mode: pause before re-querying when a round finds nothing.
  sim::Duration broadcast_retry = 50;
};

}  // namespace mobidist::net
