#include "net/formation.hpp"

#include <cassert>
#include <utility>

namespace mobidist::net {

void FormationLayer::enqueue(MssId from, MssId to, Item item) {
  assert(cfg_.max_packet_msgs >= 1 && "FormationConfig.max_packet_msgs must be >= 1");
  auto& queue = queues_[key_of(from, to)];
  const bool was_empty = queue.items.empty();
  queue.bytes += item.bytes;
  queue.items.push_back(std::move(item));
  ++msgs_enqueued_;
  ++pending_msgs_;

  if (queue.items.size() >= cfg_.max_packet_msgs) {
    ++size_flushes_;
    flush_queue(queue, from, to, "count");
    return;
  }
  if (queue.bytes >= cfg_.max_packet_bytes) {
    ++size_flushes_;
    flush_queue(queue, from, to, "bytes");
    return;
  }
  if (was_empty) {
    // First message into an idle pair: arm the deadline for this epoch.
    // A flush before the timer fires bumps the epoch and the timer
    // becomes a no-op; there is nothing to cancel.
    const auto key = key_of(from, to);
    const auto epoch = queue.epoch;
    sched_.schedule(cfg_.flush_deadline, [this, key, epoch, from, to] {
      const auto it = queues_.find(key);
      if (it == queues_.end() || it->second.epoch != epoch || it->second.items.empty()) {
        return;  // already flushed (or never refilled): stale timer
      }
      ++deadline_flushes_;
      flush_queue(it->second, from, to, "deadline");
    });
  }
}

void FormationLayer::flush_pair(MssId from, MssId to, const char* trigger) {
  const auto it = queues_.find(key_of(from, to));
  if (it == queues_.end() || it->second.items.empty()) return;
  ++barrier_flushes_;
  flush_queue(it->second, from, to, trigger);
}

void FormationLayer::flush_all(const char* trigger) {
  for (auto& [key, queue] : queues_) {
    if (queue.items.empty()) continue;
    ++barrier_flushes_;
    flush_queue(queue, static_cast<MssId>(static_cast<std::uint32_t>(key >> 32)),
                static_cast<MssId>(static_cast<std::uint32_t>(key & 0xFFFFFFFFu)), trigger);
  }
}

void FormationLayer::flush_queue(Queue& queue, MssId from, MssId to, const char* trigger) {
  Packet packet;
  packet.from = from;
  packet.to = to;
  packet.items = std::move(queue.items);
  packet.bytes = queue.bytes;
  packet.trigger = trigger;
  queue.items.clear();
  queue.bytes = 0;
  ++queue.epoch;
  assert(pending_msgs_ >= packet.items.size());
  pending_msgs_ -= packet.items.size();
  ++packets_formed_;
  transmit_(std::move(packet));
}

}  // namespace mobidist::net
