#include "net/agent.hpp"

#include <utility>

#include "net/mobile_host.hpp"
#include "net/network.hpp"

namespace mobidist::net {

void MssAgent::send_wired(MssId to, Body body) {
  Envelope env;
  env.proto = proto_;
  env.body = std::move(body);
  net().send_wired(self_, to, std::move(env));
}

void MssAgent::send_local(MhId mh, Body body) {
  Envelope env;
  env.proto = proto_;
  env.src = self_;
  env.dst = mh;
  env.body = std::move(body);
  net().send_wireless_downlink(self_, std::move(env), mh,
                               [this, mh](const Envelope& failed) {
                                 on_local_send_failed(mh, failed.body);
                               });
}

void MssAgent::send_to_mh(MhId mh, Body body, SendPolicy policy) {
  Envelope env;
  env.proto = proto_;
  env.src = self_;
  env.dst = mh;
  env.body = std::move(body);
  net().send_to_mh(self_, std::move(env), mh, policy);
}

void MhAgent::send_uplink(Body body) {
  Envelope env;
  env.proto = proto_;
  env.src = self_;
  env.dst = net().mh(self_).current_mss();
  env.body = std::move(body);
  net().send_wireless_uplink(self_, std::move(env));
}

void MhAgent::send_to_mh(MhId dst, Body body, bool fifo) {
  net().mh(self_).send_relay(dst, proto_, std::move(body), fifo);
}

}  // namespace mobidist::net
