#pragma once

#include <any>
#include <cstdint>
#include <map>

#include "net/envelope.hpp"
#include "net/ids.hpp"

namespace mobidist::net::msg {

// ---------------------------------------------------------------------------
// Substrate control messages (Section 2 of the paper). All travel with
// proto == protocol::kSystem and are exempt from cost accounting.
// ---------------------------------------------------------------------------

/// MH -> new MSS when entering a cell. Per Section 2 the basic protocol
/// carries only the MH id; Section 4 requires the previous MSS id as
/// well (for handoff and location-view maintenance), so it is always
/// included here (kInvalidMss for the first join).
struct Join {
  MhId mh = kInvalidMh;
  MssId prev_mss = kInvalidMss;
  bool reconnect = false;  ///< true when this is a reconnect(mh, prev) message
};

/// MH -> current MSS just before leaving the cell. `last_seq` is r, the
/// sequence number of the last downlink message received; anything the
/// MSS sent beyond r was not (and will never be) delivered in this cell.
struct Leave {
  MhId mh = kInvalidMh;
  std::uint64_t last_seq = 0;
  /// The MH's monotone join counter when this leave was sent. A leave
  /// retransmitted over the lossy wireless hop can trail the MH's next
  /// join on the same channel; the MSS ignores it once its recorded
  /// arrival epoch for the MH is newer than this departure.
  std::uint64_t join_seq = 0;
};

/// MH -> current MSS on voluntary disconnection; identical shape to
/// Leave but sets the "disconnected" flag at the MSS instead of
/// implying an eventual rejoin.
struct Disconnect {
  MhId mh = kInvalidMh;
  std::uint64_t last_seq = 0;
  std::uint64_t join_seq = 0;  ///< same stale-retransmission guard as Leave
};

/// New MSS -> previous MSS after a join: asks for algorithm state held
/// on the MH's behalf and for any undelivered downlink traffic.
/// `join_seq` (the MH's monotone join counter at the triggering join)
/// lets the previous MSS ignore the implicit-leave side effect of a
/// request that arrives after the MH has already bounced back.
struct HandoffRequest {
  MhId mh = kInvalidMh;
  MssId new_mss = kInvalidMss;
  bool clears_disconnect = false;
  std::uint64_t join_seq = 0;
};

/// Previous MSS -> new MSS: per-protocol state blobs gathered from the
/// agents via MssAgent::on_handoff_out().
struct HandoffState {
  MhId mh = kInvalidMh;
  MssId prev_mss = kInvalidMss;
  std::map<ProtocolId, std::any> state;
};

/// Broadcast search query (SearchMode::kBroadcast): "is `target` local
/// to you (or disconnected at you)?". `round` distinguishes retry rounds
/// of the same search so that late replies from an earlier round cannot
/// be double-counted toward the current round's quorum.
struct SearchQuery {
  MhId target = kInvalidMh;
  MssId origin = kInvalidMss;
  std::uint64_t token = 0;  ///< correlates replies with the request
  std::uint64_t round = 0;
};

/// Reply to SearchQuery.
struct SearchReply {
  MhId target = kInvalidMh;
  MssId from = kInvalidMss;   ///< the replying MSS
  std::uint64_t token = 0;
  std::uint64_t round = 0;
  bool here = false;          ///< target is local to the replying MSS
  bool disconnected = false;  ///< target disconnected in the replier's cell
};

/// Disconnect-flag MSS -> original sender: a send with
/// SendPolicy::kNotifyIfDisconnected hit a disconnected MH. Carries the
/// undelivered body back so the sending agent can react (L2 §3.1.1).
struct UnreachableNotice {
  MhId mh = kInvalidMh;
  ProtocolId proto = 0;
  Body body;
};

/// reconnect(mh) without a previous-MSS id: the new MSS "may have to
/// query each fixed host to determine the previous location of the MH".
struct FindDisconnect {
  MhId mh = kInvalidMh;
  MssId origin = kInvalidMss;
};

/// Reply to FindDisconnect.
struct FindDisconnectReply {
  MhId mh = kInvalidMh;
  MssId from = kInvalidMss;
  bool had_flag = false;
};

// ---------------------------------------------------------------------------
// Relay service (protocol::kRelay): gives L1/R1 their MH-to-MH channels.
// ---------------------------------------------------------------------------

/// Wrapper carried MH -> MSS -> MSS -> MH. `seq` numbers the (src_mh ->
/// dst_mh) logical channel so the destination can re-sequence and
/// provide the FIFO guarantee Lamport's algorithm needs — the
/// "additional burden on the underlying network protocols" of §3.1.1.
struct Relay {
  MhId src_mh = kInvalidMh;
  MhId dst_mh = kInvalidMh;
  ProtocolId inner_proto = 0;
  Body inner;  ///< nested payload (pushes the Relay itself to Body's heap path)
  std::uint64_t seq = 0;
  bool fifo = true;  ///< false: deliver in arrival order (no resequencing)
};

}  // namespace mobidist::net::msg
