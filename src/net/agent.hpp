#pragma once

#include <any>

#include "net/envelope.hpp"
#include "net/ids.hpp"

namespace mobidist::net {

class Network;

/// How a send addressed to a (possibly moving / disconnected) MH behaves
/// when the MH cannot currently be reached.
enum class SendPolicy : std::uint8_t {
  /// Follow the MH across moves (each retry incurs a fresh search); if
  /// it disconnected, park the message at the disconnect MSS and deliver
  /// on reconnect. This is the model's "eventual delivery" guarantee.
  kEventualDelivery,
  /// Follow the MH across moves, but if it disconnected notify the
  /// sending agent (MssAgent::on_mh_unreachable) instead of parking.
  /// This is what L2 needs: "its current local MSS ... will notify ml of
  /// h1's disconnected status".
  kNotifyIfDisconnected,
};

/// Algorithm code that lives on a fixed host (MSS). One agent instance
/// per (MSS, protocol); the substrate invokes the callbacks below.
///
/// All callbacks run inside the simulation loop; agents may send
/// messages and schedule timers from any of them.
class MssAgent {
 public:
  virtual ~MssAgent() = default;

  /// Wiring performed by Mss::register_agent(); not called by users.
  void attach(Network& net, MssId self, ProtocolId proto) noexcept {
    net_ = &net;
    self_ = self;
    proto_ = proto;
  }

  /// Called once after every agent in the system has been registered.
  virtual void on_start() {}

  /// An envelope for this protocol arrived (wired or wireless).
  virtual void on_message(const Envelope& env) = 0;

  /// A MH joined this MSS's cell (after handoff completed, if any).
  /// `prev` is kInvalidMss on first join.
  virtual void on_mh_joined(MhId /*mh*/, MssId /*prev*/) {}

  /// A MH left this cell (leave() processed or implied by handoff).
  virtual void on_mh_left(MhId /*mh*/) {}

  /// A MH disconnected in this cell.
  virtual void on_mh_disconnected(MhId /*mh*/) {}

  /// A MH reconnected in this cell (on_mh_joined is also invoked).
  virtual void on_mh_reconnected(MhId /*mh*/, MssId /*prev*/) {}

  /// A MH that had disconnected in this cell reconnected somewhere else;
  /// the substrate just cleared its "disconnected" flag here. Agents
  /// tracking disconnected-but-located members drop them now.
  virtual void on_disconnected_mh_migrated(MhId /*mh*/, MssId /*new_mss*/) {}

  /// Produce state to hand to the MH's next MSS; return an empty
  /// std::any if this protocol keeps no per-MH state.
  virtual std::any on_handoff_out(MhId /*mh*/) { return {}; }

  /// Receive state handed over from the MH's previous MSS.
  virtual void on_handoff_in(MhId /*mh*/, MssId /*from*/, const std::any& /*state*/) {}

  /// A send_to_mh with SendPolicy::kNotifyIfDisconnected found the MH
  /// disconnected; the undelivered body comes back.
  virtual void on_mh_unreachable(MhId /*mh*/, const Body& /*body*/) {}

  /// A send_local frame was lost because the MH left the cell before it
  /// landed; the undelivered body comes back.
  virtual void on_local_send_failed(MhId /*mh*/, const Body& /*body*/) {}

 protected:
  /// The substrate this agent is attached to.
  [[nodiscard]] Network& net() const noexcept { return *net_; }
  /// The MSS this agent instance lives on.
  [[nodiscard]] MssId self() const noexcept { return self_; }
  /// The protocol id this agent registered under.
  [[nodiscard]] ProtocolId proto() const noexcept { return proto_; }

  /// Send to another MSS over the wired network (FIFO, charged the wired
  /// cost terms; a self-send dispatches locally free of charge). With
  /// NetConfig::formation batching enabled the message may coalesce into
  /// a packet with other wired traffic on the same (src,dst) pair.
  void send_wired(MssId to, Body body);

  /// Send to a MH that must currently be local to this MSS (one
  /// wireless hop, charged c_wireless).
  void send_local(MhId mh, Body body);

  /// Locate a MH anywhere in the system and deliver (charged c_search +
  /// c_wireless in oracle mode; real messages in broadcast mode).
  void send_to_mh(MhId mh, Body body,
                  SendPolicy policy = SendPolicy::kEventualDelivery);

 private:
  Network* net_ = nullptr;
  MssId self_ = kInvalidMss;
  ProtocolId proto_ = 0;
};

/// Algorithm code that lives on a mobile host.
class MhAgent {
 public:
  virtual ~MhAgent() = default;

  /// Wiring performed by MobileHost::register_agent(); not called by users.
  void attach(Network& net, MhId self, ProtocolId proto) noexcept {
    net_ = &net;
    self_ = self;
    proto_ = proto;
  }

  /// Called once after every agent in the system has been registered.
  virtual void on_start() {}

  /// An envelope for this protocol was delivered over the wireless link.
  virtual void on_message(const Envelope& env) = 0;

  /// This MH completed a join into `mss`'s cell.
  virtual void on_joined_cell(MssId /*mss*/) {}

  /// This MH left its cell (move or disconnect initiated).
  virtual void on_left_cell() {}

 protected:
  /// The substrate this agent is attached to.
  [[nodiscard]] Network& net() const noexcept { return *net_; }
  /// The MH this agent instance lives on.
  [[nodiscard]] MhId self() const noexcept { return self_; }
  /// The protocol id this agent registered under.
  [[nodiscard]] ProtocolId proto() const noexcept { return proto_; }

  /// Send to this MH's current local MSS (one wireless hop). The MH must
  /// be connected and in a cell.
  void send_uplink(Body body);

  /// Send to another MH via the relay service: wireless uplink, then
  /// search + forward, then wireless downlink (the 2*c_wireless +
  /// c_search path of §2). `fifo` enables destination resequencing.
  void send_to_mh(MhId dst, Body body, bool fifo = true);

 private:
  Network* net_ = nullptr;
  MhId self_ = kInvalidMh;
  ProtocolId proto_ = 0;
};

}  // namespace mobidist::net
