#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace mobidist::exp::json {

/// Minimal immutable JSON value tree. Parses the subset this repo
/// actually writes (objects, arrays, strings, finite numbers, bools,
/// null) — enough to load ScenarioSpec files and committed BENCH_*.json
/// baselines without an external dependency. Numbers are kept as double;
/// the artifacts only store integers that fit a double exactly plus
/// reals written by format_double (shortest round-trip form), so
/// nothing is lost.
class Value {
 public:
  enum class Kind : std::uint8_t { kNull, kBool, kNumber, kString, kArray, kObject };

  using Array = std::vector<Value>;
  /// Name-ordered so re-serialization is deterministic.
  using Object = std::map<std::string, Value, std::less<>>;

  Value() = default;
  explicit Value(bool b) : kind_(Kind::kBool), bool_(b) {}
  explicit Value(double n) : kind_(Kind::kNumber), num_(n) {}
  /// Unsigned-integer literal: keeps the exact 64-bit value alongside the
  /// double view, so seeds (full splitmix64 range, beyond double's 53-bit
  /// mantissa) survive an artifact round-trip.
  Value(double n, std::uint64_t exact)
      : kind_(Kind::kNumber), num_(n), u64_(exact), has_u64_(true) {}
  explicit Value(std::string s) : kind_(Kind::kString), str_(std::move(s)) {}
  explicit Value(Array a) : kind_(Kind::kArray), arr_(std::move(a)) {}
  explicit Value(Object o) : kind_(Kind::kObject), obj_(std::move(o)) {}

  [[nodiscard]] Kind kind() const noexcept { return kind_; }
  [[nodiscard]] bool is_null() const noexcept { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const noexcept { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const noexcept { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const noexcept { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return kind_ == Kind::kObject; }

  [[nodiscard]] bool as_bool(bool fallback = false) const noexcept {
    return is_bool() ? bool_ : fallback;
  }
  [[nodiscard]] double as_number(double fallback = 0.0) const noexcept {
    return is_number() ? num_ : fallback;
  }
  /// Exact unsigned view of an integer literal; falls back to a cast of
  /// the double value for numbers not parsed as unsigned integers.
  [[nodiscard]] std::uint64_t as_u64(std::uint64_t fallback = 0) const noexcept {
    if (!is_number()) return fallback;
    return has_u64_ ? u64_ : static_cast<std::uint64_t>(num_);
  }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }
  [[nodiscard]] const Array& as_array() const noexcept { return arr_; }
  [[nodiscard]] const Object& as_object() const noexcept { return obj_; }

  /// Object member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  /// Dotted-path lookup ("timing.wall_clock_ms"); nullptr when any hop
  /// is missing.
  [[nodiscard]] const Value* at_path(std::string_view dotted) const noexcept;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::uint64_t u64_ = 0;
  bool has_u64_ = false;
  std::string str_;
  Array arr_;
  Object obj_;
};

/// Parse one JSON document (surrounding whitespace allowed). Returns
/// nullopt on any syntax error or trailing garbage.
[[nodiscard]] std::optional<Value> parse(std::string_view text);

/// Render a double for a JSON artifact: std::to_chars shortest
/// round-trip form — locale-independent (always '.' as the decimal
/// separator, unlike snprintf "%f" under e.g. a de_DE locale) and exact
/// (parsing the text recovers the identical bits, where %.6f silently
/// truncated to six fractional digits). Non-finite values, which JSON
/// cannot represent, render as "null".
[[nodiscard]] std::string format_double(double value);

}  // namespace mobidist::exp::json
