#include "exp/json.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>

namespace mobidist::exp::json {

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  const auto it = obj_.find(key);
  return it == obj_.end() ? nullptr : &it->second;
}

const Value* Value::at_path(std::string_view dotted) const noexcept {
  const Value* node = this;
  while (!dotted.empty()) {
    const auto dot = dotted.find('.');
    const auto head = dotted.substr(0, dot);
    node = node->find(head);
    if (node == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    dotted.remove_prefix(dot + 1);
  }
  return node;
}

namespace {

/// Recursive-descent parser over a string_view cursor. Depth-capped so a
/// hostile input cannot blow the stack.
class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  std::optional<Value> document() {
    auto value = parse_value(0);
    if (!value) return std::nullopt;
    skip_ws();
    if (pos_ != text_.size()) return std::nullopt;  // trailing garbage
    return value;
  }

 private:
  static constexpr int kMaxDepth = 64;

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  [[nodiscard]] bool eat(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  [[nodiscard]] bool literal(std::string_view word) {
    if (text_.substr(pos_, word.size()) != word) return false;
    pos_ += word.size();
    return true;
  }

  std::optional<Value> parse_value(int depth) {  // NOLINT(misc-no-recursion)
    if (depth > kMaxDepth) return std::nullopt;
    skip_ws();
    if (pos_ >= text_.size()) return std::nullopt;
    switch (text_[pos_]) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': {
        auto str = parse_string();
        if (!str) return std::nullopt;
        return Value(std::move(*str));
      }
      case 't': return literal("true") ? std::optional<Value>(Value(true)) : std::nullopt;
      case 'f': return literal("false") ? std::optional<Value>(Value(false)) : std::nullopt;
      case 'n': return literal("null") ? std::optional<Value>(Value{}) : std::nullopt;
      default: return parse_number();
    }
  }

  std::optional<Value> parse_object(int depth) {  // NOLINT(misc-no-recursion)
    if (!eat('{')) return std::nullopt;
    Value::Object members;
    skip_ws();
    if (eat('}')) return Value(std::move(members));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!eat(':')) return std::nullopt;
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      members.insert_or_assign(std::move(*key), std::move(*value));
      skip_ws();
      if (eat(',')) continue;
      if (eat('}')) return Value(std::move(members));
      return std::nullopt;
    }
  }

  std::optional<Value> parse_array(int depth) {  // NOLINT(misc-no-recursion)
    if (!eat('[')) return std::nullopt;
    Value::Array items;
    skip_ws();
    if (eat(']')) return Value(std::move(items));
    while (true) {
      auto value = parse_value(depth + 1);
      if (!value) return std::nullopt;
      items.push_back(std::move(*value));
      skip_ws();
      if (eat(',')) continue;
      if (eat(']')) return Value(std::move(items));
      return std::nullopt;
    }
  }

  std::optional<std::string> parse_string() {
    if (!eat('"')) return std::nullopt;
    std::string out;
    while (pos_ < text_.size()) {
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) return std::nullopt;
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return std::nullopt;
          unsigned code = 0;
          const char* first = text_.data() + pos_;
          const auto [ptr, ec] = std::from_chars(first, first + 4, code, 16);
          if (ec != std::errc{} || ptr != first + 4) return std::nullopt;
          pos_ += 4;
          // The repo's writers only escape control characters, so a
          // plain one-byte append covers everything we produce.
          out += static_cast<char>(code);
          break;
        }
        default: return std::nullopt;
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c)) != 0 || c == '.' || c == 'e' ||
          c == 'E' || c == '-' || c == '+') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) return std::nullopt;
    double value = 0.0;
    const char* first = text_.data() + start;
    const char* last = text_.data() + pos_;
    const auto [ptr, ec] = std::from_chars(first, last, value);
    if (ec != std::errc{} || ptr != last) return std::nullopt;
    // Plain unsigned-integer literals keep their exact 64-bit value too
    // (seeds exceed double's 53-bit mantissa).
    const std::string_view token = text_.substr(start, pos_ - start);
    if (!token.empty() && token.find_first_not_of("0123456789") == std::string_view::npos) {
      std::uint64_t exact = 0;
      const auto [uptr, uec] = std::from_chars(first, last, exact);
      if (uec == std::errc{} && uptr == last) return Value(value, exact);
    }
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::optional<Value> parse(std::string_view text) { return Parser(text).document(); }

std::string format_double(double value) {
  if (!std::isfinite(value)) return "null";
  // Longest shortest-round-trip double is 24 chars ("-2.2250738585072014e-308").
  std::array<char, 32> buf{};
  const auto [ptr, ec] = std::to_chars(buf.data(), buf.data() + buf.size(), value);
  if (ec != std::errc{}) return "0";  // cannot happen with this buffer size
  return std::string(buf.data(), ptr);
}

}  // namespace mobidist::exp::json
