#include "exp/runner.hpp"

#include <atomic>
#include <cctype>
#include <chrono>
#include <span>
#include <stdexcept>
#include <thread>
#include <utility>

#include "core/report.hpp"
#include "group/always_inform.hpp"
#include "group/group.hpp"
#include "group/location_view.hpp"
#include "group/pure_search.hpp"
#include "mobility/mobility_model.hpp"
#include "multicast/multicast.hpp"
#include "mutex/l1.hpp"
#include "mutex/l2.hpp"
#include "mutex/monitor.hpp"
#include "mutex/options.hpp"
#include "mutex/path_reversal.hpp"
#include "mutex/r1.hpp"
#include "mutex/r2.hpp"
#include "net/agent.hpp"
#include "obs/checkers.hpp"
#include "obs/events.hpp"
#include "proxy/proxy.hpp"
#include "proxy/static_algorithm.hpp"
#include "workload/workload.hpp"

namespace mobidist::exp {

namespace {

using net::MhId;
using net::MssId;

[[noreturn]] void bad_workload(const ScenarioSpec& spec, const std::string& what) {
  throw std::runtime_error("workload '" + spec.workload + "': " + what);
}

/// Unknown-variant failure that enumerates the names the workload DOES
/// accept, so a typo in scenario JSON is a one-glance fix.
[[noreturn]] void bad_variant(const ScenarioSpec& spec,
                              std::span<const std::string_view> valid) {
  std::string what = "unknown variant '" + spec.variant + "' (valid: ";
  for (std::size_t i = 0; i < valid.size(); ++i) {
    if (i != 0) what += ", ";
    what += valid[i];
  }
  what += ")";
  bad_workload(spec, what);
}

void require_topology(const ScenarioSpec& spec, std::uint32_t min_mss, std::uint32_t min_mh) {
  if (spec.net.num_mss < min_mss || spec.net.num_mh < min_mh) {
    bad_workload(spec, "needs at least " + std::to_string(min_mss) + " MSSs and " +
                           std::to_string(min_mh) + " MHs");
  }
}

/// Chaos-style scripted moves shared by the mutex/ring workloads: move i
/// fires at 60 + 80*i, relocating host (2 + 2*i) mod N one cell to the
/// right, guarded so a host that is mid-transit (or evacuating a crashed
/// cell) simply skips its turn.
void schedule_chaos_moves(ScenarioContext& ctx) {
  const auto count = ctx.spec().param_u64("chaos_moves", 0);
  auto& net = ctx.net();
  const std::uint32_t n = net.num_mh();
  const std::uint32_t m = net.num_mss();
  for (std::uint64_t i = 0; i < count; ++i) {
    const auto host = static_cast<MhId>((2 + 2 * i) % n);
    const auto target = static_cast<MssId>((net::index(host) + 1) % m);
    net.sched().schedule_at(60 + 80 * i, [&net, host, target] {
      if (net.mh(host).connected()) net.mh(host).move_to(target, 15);
    });
  }
}

void monitor_metrics(ScenarioContext& ctx, mutex::CsMonitor& monitor) {
  auto* mon = &monitor;
  ctx.metric("violations", [mon] { return static_cast<double>(mon->violations()); });
  ctx.metric("grants", [mon] { return static_cast<double>(mon->grants()); });
}

/// Expose a mobility driver's move counters and per-region
/// significant-move fraction f in the artifact (as workload.mob.*) —
/// the empirical counterpart of the paper's §4 f parameter, reported
/// per departure region so skewed models are visible in the sweep.
void mobility_metrics(ScenarioContext& ctx, const mobility::MobilityDriver& driver) {
  const auto* d = &driver;
  ctx.metric("mob.moves", [d] { return static_cast<double>(d->moves()); });
  ctx.metric("mob.disconnects", [d] { return static_cast<double>(d->disconnects()); });
  ctx.metric("mob.f", [d] { return d->f_overall(); });
  for (std::uint32_t r = 0; r < driver.regions(); ++r) {
    ctx.metric("mob.f_region_" + std::to_string(r), [d, r] { return d->f_region(r); });
    ctx.metric("mob.moves_region_" + std::to_string(r),
               [d, r] { return static_cast<double>(d->moves_in_region(r)); });
  }
}

// --- mutex: L1 / L2 / ring family / pathrev (benches e1, e2, e7, e10) ------

void build_ring(ScenarioContext& ctx);

void build_mutex(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  const std::uint32_t n = net.num_mh();

  // The ring family keeps its own fixtures (token fuel, chase script);
  // accept its names here too so one scenario axis can sweep the whole
  // mutex menagerie.
  for (const auto ring_name : mutex::kRingVariantNames) {
    if (spec.variant == ring_name) {
      build_ring(ctx);
      return;
    }
  }

  auto& monitor = ctx.emplace<mutex::CsMonitor>();

  std::function<void(MhId)> request;
  if (spec.variant == "l1") {
    auto* l1 = &ctx.emplace<mutex::L1Mutex>(net, monitor);
    request = [l1](MhId mh) { l1->request(mh); };
    ctx.metric("completed", [l1] { return static_cast<double>(l1->completed()); });
  } else if (spec.variant == "l2") {
    auto* l2 = &ctx.emplace<mutex::L2Mutex>(net, monitor);
    request = [l2](MhId mh) { l2->request(mh); };
    ctx.metric("completed", [l2] { return static_cast<double>(l2->completed()); });
    ctx.metric("aborted", [l2] { return static_cast<double>(l2->aborted()); });
  } else if (spec.variant == "pathrev") {
    auto* nt = &ctx.emplace<mutex::PathRevMutex>(net, monitor);
    request = [nt](MhId mh) { nt->request(mh); };
    ctx.metric("completed", [nt] { return static_cast<double>(nt->completed()); });
    ctx.metric("skipped_disconnected",
               [nt] { return static_cast<double>(nt->skipped_disconnected()); });
    ctx.metric("bounced_grants",
               [nt] { return static_cast<double>(nt->bounced_grants()); });
    ctx.metric("rehomed", [nt] { return static_cast<double>(nt->rehomed()); });
  } else {
    bad_variant(spec, mutex::kMutexVariantNames);
  }
  monitor_metrics(ctx, monitor);
  auto* netp = &net;
  const auto cost = spec.cost;
  ctx.metric("initiator_energy",
             [netp, cost] { return netp->ledger().energy_at(0, cost); });

  const auto requests = ctx.spec().param_u64("requests", 1);
  const auto start = ctx.spec().param_u64("request_start", 1);
  const auto gap = ctx.spec().param_u64("request_gap", 0);
  for (std::uint64_t i = 0; i < requests; ++i) {
    const auto mh = static_cast<MhId>(i % n);
    net.sched().schedule_at(start + i * gap, [request, mh] { request(mh); });
  }

  // Optional scripted move of the first requester (e1's L2 release relay).
  if (const auto move_at = spec.param_u64("move_at", 0); move_at != 0) {
    const auto to = static_cast<MssId>(spec.param_u64("move_to", 1));
    const auto transit = spec.param_u64("move_transit", 2);
    net.sched().schedule_at(move_at, [&net, to, transit] {
      net.mh(MhId(0)).move_to(to, transit);
    });
  }

  // Everyone but the first requester dozes (e2's battery story).
  if (spec.param_u64("doze_others", 0) != 0) {
    for (std::uint32_t i = 1; i < n; ++i) net.mh(static_cast<MhId>(i)).set_doze(true);
  }

  // Optional scripted disconnect (e2's tolerance scenarios).
  if (const auto disc_at = spec.param_u64("disconnect_at", 0); disc_at != 0) {
    const auto mh = static_cast<MhId>(spec.param_u64("disconnect_mh", 0));
    net.sched().schedule_at(disc_at, [&net, mh] { net.mh(mh).disconnect(); });
  }

  schedule_chaos_moves(ctx);

  if (const auto until = spec.param_u64("run_until", 0); until != 0) ctx.run_until(until);
}

// --- ring: R1 / R2 / R2' / R2'' (benches e3, e4; chaos) --------------------

void build_ring(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  const std::uint32_t n = net.num_mh();
  const std::uint32_t m = net.num_mss();
  auto& monitor = ctx.emplace<mutex::CsMonitor>();

  const auto traversals = spec.param_u64("traversals", 1);
  std::function<void(MhId)> request;
  mutex::R2Mutex* r2 = nullptr;
  if (spec.variant == "r1") {
    auto* r1 = &ctx.emplace<mutex::R1Mutex>(net, monitor);
    request = [r1](MhId mh) { r1->request(mh); };
    ctx.metric("completed", [r1] { return static_cast<double>(r1->completed()); });
    const auto token_at = spec.param_u64("token_at", 1);
    net.sched().schedule_at(token_at, [r1, traversals] { r1->start_token(traversals); });
  } else {
    mutex::RingVariant variant;
    if (spec.variant == "r2") variant = mutex::RingVariant::kBasic;
    else if (spec.variant == "r2p") variant = mutex::RingVariant::kCounter;
    else if (spec.variant == "r2pp") variant = mutex::RingVariant::kTokenList;
    else bad_variant(spec, mutex::kRingVariantNames);
    r2 = &ctx.emplace<mutex::R2Mutex>(net, monitor, variant);
    request = [r2](MhId mh) { r2->request(mh); };
    ctx.metric("completed", [r2] { return static_cast<double>(r2->completed()); });
    if (spec.param_u64("malicious", 0) != 0) r2->set_malicious(MhId(0), true);
    if (spec.param_u64("absorb_idle", 0) != 0) r2->set_absorb_when_idle(true);
    const auto token_at = spec.param_u64("token_at", 5);
    net.sched().schedule_at(token_at, [r2, traversals] { r2->start_token(traversals); });
  }
  monitor_metrics(ctx, monitor);

  const auto requests = spec.param_u64("requests", 0);
  const auto start = spec.param_u64("request_start", 0);
  const auto gap = spec.param_u64("request_gap", 0);
  for (std::uint64_t i = 0; i < requests; ++i) {
    const auto mh = static_cast<MhId>(i % n);
    net.sched().schedule_at(start + i * gap, [request, mh] { request(mh); });
  }

  // e4's token chase: mh0 requests at its start cell, then hops one cell
  // ahead of the slow token and requests again at every stop.
  if (spec.param_u64("chase", 0) != 0) {
    if (r2 == nullptr) bad_workload(spec, "'chase' needs an R2 variant");
    net.sched().schedule_at(1, [request] { request(MhId(0)); });
    const auto hop_gap = spec.param_u64("chase_hop_gap", 200);
    for (std::uint32_t cell = 1; cell < m; ++cell) {
      const sim::SimTime when = 60 + (cell - 1) * hop_gap;
      net.sched().schedule_at(when, [&net, cell] {
        auto& host = net.mh(MhId(0));
        if (host.connected() && host.current_mss() != static_cast<MssId>(cell)) {
          host.move_to(static_cast<MssId>(cell), 3);
        }
      });
      net.sched().schedule_at(when + 10, [request] { request(MhId(0)); });
    }
    ctx.metric("grants_traversal1",
               [r2] { return static_cast<double>(r2->grants_for(MhId(0), 1)); });
  }

  schedule_chaos_moves(ctx);
}

// --- delivery: one locate-and-deliver (bench a1) ---------------------------

class PingStation : public net::MssAgent {
 public:
  void on_message(const net::Envelope&) override {}
  void ping(MhId target) { send_to_mh(target, 1); }
};

class PingHost : public net::MhAgent {
 public:
  void on_message(const net::Envelope&) override { ++received; }
  std::uint64_t received = 0;
};

void build_delivery(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  require_topology(spec, 2, 2);
  auto station = std::make_shared<PingStation>();
  auto host = std::make_shared<PingHost>();
  ctx.emplace<std::shared_ptr<PingStation>>(station);
  ctx.emplace<std::shared_ptr<PingHost>>(host);
  const auto target = static_cast<MhId>(net.num_mh() - 1);
  net.mss(MssId(0)).register_agent(net::protocol::kUserBase, station);
  net.mh(target).register_agent(net::protocol::kUserBase, host);
  if (spec.param_u64("in_transit", 0) != 0) {
    net.sched().schedule_at(1, [&net, target] {
      net.mh(target).move_to(MssId(1), 120);  // long transit across the query
    });
  }
  net.sched().schedule_at(5, [station, target] { station->ping(target); });
  ctx.metric("delivered", [host] { return static_cast<double>(host->received); });
}

// --- relay_burst: MH-to-MH FIFO resequencer (bench a2) ---------------------

class BurstReceiver : public net::MhAgent {
 public:
  void on_message(const net::Envelope& env) override {
    if (const auto* value = net::body_as<int>(env)) received.push_back(*value);
  }
  std::vector<int> received;
};

class BurstSender : public net::MhAgent {
 public:
  void on_message(const net::Envelope&) override {}
  void burst(MhId to, int from, int count, bool fifo) {
    for (int i = from; i < from + count; ++i) send_to_mh(to, i, fifo);
  }
};

void build_relay_burst(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  require_topology(spec, 4, 2);
  static constexpr std::string_view kNames[] = {"raw", "fifo"};
  bool fifo = false;
  if (spec.variant == "fifo") fifo = true;
  else if (spec.variant != "raw") bad_variant(spec, kNames);

  auto sender = std::make_shared<BurstSender>();
  auto receiver = std::make_shared<BurstReceiver>();
  ctx.emplace<std::shared_ptr<BurstSender>>(sender);
  ctx.emplace<std::shared_ptr<BurstReceiver>>(receiver);
  net.mh(MhId(0)).register_agent(net::protocol::kUserBase, sender);
  net.mh(MhId(1)).register_agent(net::protocol::kUserBase, receiver);

  const int burst = static_cast<int>(spec.param_u64("burst", 15));
  net.sched().schedule_at(1, [sender, burst, fifo] {
    sender->burst(MhId(1), 0, burst, fifo);
  });
  net.sched().schedule_at(4, [&net] { net.mh(MhId(1)).move_to(MssId(2), 30); });
  net.sched().schedule_at(80, [sender, burst, fifo] {
    sender->burst(MhId(1), burst, burst, fifo);
  });
  net.sched().schedule_at(90, [&net] { net.mh(MhId(1)).move_to(MssId(3), 25); });

  ctx.metric("delivered", [receiver] { return static_cast<double>(receiver->received.size()); });
  ctx.metric("inversions", [receiver] {
    std::uint64_t inversions = 0;
    for (std::size_t i = 1; i < receiver->received.size(); ++i) {
      if (receiver->received[i] < receiver->received[i - 1]) ++inversions;
    }
    return static_cast<double>(inversions);
  });
}

// --- lazy_proxy: inform-period U-curve (bench a3) --------------------------

void build_lazy_proxy(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  const std::uint32_t m = net.num_mss();
  require_topology(spec, 2, 1);
  proxy::ProxyOptions opts;
  opts.scope = proxy::ProxyScope::kLazyHome;
  opts.inform_every = static_cast<std::uint32_t>(spec.param_u64("inform_every", 3));
  auto& proxies = ctx.emplace<proxy::ProxyService>(net, opts);
  auto delivered = std::make_shared<std::uint64_t>(0);
  proxies.set_client_handler([delivered](MhId, const std::any&) { ++*delivered; });

  const auto moves = spec.param_u64("moves", 24);
  const auto send_every = spec.param_u64("send_every", 3);
  const auto move_gap = spec.param_u64("move_gap", 40);
  auto* service = &proxies;
  for (std::uint64_t move = 0; move < moves; ++move) {
    net.sched().schedule_at(1 + move_gap * move, [&net, m] {
      auto& host = net.mh(MhId(0));
      if (!host.connected()) return;
      const auto next = static_cast<MssId>((net::index(host.current_mss()) + 1) % m);
      host.move_to(next, 4);
    });
    if (send_every != 0 && move % send_every == send_every - 1) {
      net.sched().schedule_at(move_gap / 2 + move_gap * move, [service] {
        service->proxy_send(MssId(0), MhId(0), 1);
      });
    }
  }
  ctx.metric("informs", [service] { return static_cast<double>(service->informs()); });
  ctx.metric("delivered", [delivered] { return static_cast<double>(*delivered); });
}

// --- multicast: flood+handoff vs per-recipient search (bench a4) -----------

class NaiveMcastSender : public net::MssAgent {
 public:
  explicit NaiveMcastSender(group::Group recipients) : recipients_(std::move(recipients)) {}
  void on_message(const net::Envelope&) override {}
  void blast(std::uint64_t msg_id) {
    for (const auto mh : recipients_.members) send_to_mh(mh, msg_id);
  }

 private:
  group::Group recipients_;
};

class NaiveMcastReceiver : public net::MhAgent {
 public:
  explicit NaiveMcastReceiver(group::DeliveryMonitor& monitor) : monitor_(monitor) {}
  void on_message(const net::Envelope& env) override {
    if (const auto* id = net::body_as<std::uint64_t>(env)) monitor_.delivered(*id, self());
  }

 private:
  group::DeliveryMonitor& monitor_;
};

void build_multicast(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  const auto count = static_cast<std::uint32_t>(spec.param_u64("recipients", 4));
  require_topology(spec, 2, count);
  std::vector<MhId> members;
  for (std::uint32_t i = 0; i < count; ++i) members.push_back(static_cast<MhId>(i));
  const auto recipients = group::Group::of(members);
  const auto messages = spec.param_u64("messages", 20);

  // Background mobility over the recipient set only, configured by the
  // spec's mobility block but driven here regardless of spec.mobility
  // (which would move every host instead).
  auto& driver = ctx.emplace<mobility::MobilityDriver>(net, spec.mob, members);
  auto* driver_ptr = &driver;
  ctx.after_start([driver_ptr] { driver_ptr->start(); });

  if (spec.variant == "flood") {
    auto& mcast = ctx.emplace<multicast::McastService>(net, recipients);
    auto* service = &mcast;
    for (std::uint64_t i = 0; i < messages; ++i) {
      net.sched().schedule_at(5 + 25 * i, [service] { service->publish(MssId(0)); });
    }
    ctx.metric("exactly_once", [service, recipients] {
      return service->monitor().exactly_once(recipients) ? 1.0 : 0.0;
    });
  } else if (spec.variant == "search") {
    auto& monitor = ctx.emplace<group::DeliveryMonitor>();
    auto sender = std::make_shared<NaiveMcastSender>(recipients);
    ctx.emplace<std::shared_ptr<NaiveMcastSender>>(sender);
    net.mss(MssId(0)).register_agent(net::protocol::kUserBase + 9, sender);
    for (std::uint32_t i = 1; i < net.num_mss(); ++i) {
      net.mss(static_cast<MssId>(i))
          .register_agent(net::protocol::kUserBase + 9,
                          std::make_shared<NaiveMcastSender>(recipients));
    }
    for (const auto mh : recipients.members) {
      net.mh(mh).register_agent(net::protocol::kUserBase + 9,
                                std::make_shared<NaiveMcastReceiver>(monitor));
    }
    auto* mon = &monitor;
    for (std::uint64_t i = 0; i < messages; ++i) {
      net.sched().schedule_at(5 + 25 * i, [mon, sender, i] {
        mon->sent(i + 1, net::kInvalidMh);
        sender->blast(i + 1);
      });
    }
    ctx.metric("exactly_once", [mon, recipients] {
      return mon->exactly_once(recipients) ? 1.0 : 0.0;
    });
  } else {
    static constexpr std::string_view kNames[] = {"flood", "search"};
    bad_variant(spec, kNames);
  }
}

// --- group: the three §4 location strategies (bench e5) --------------------

/// Variant names shared by the `group` and `group_mobility` workloads.
constexpr std::string_view kGroupVariantNames[] = {"pure_search", "always_inform",
                                                   "location_view"};

/// Construct the §4 strategy named by spec.variant over `group`, wire
/// its exactly-once (and LV bookkeeping) metrics, and hand back the
/// send-one-group-message closure the message schedule drives.
std::function<void(MhId)> build_group_strategy(ScenarioContext& ctx,
                                               const group::Group& group) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  if (spec.variant == "pure_search") {
    auto* comm = &ctx.emplace<group::PureSearchGroup>(net, group);
    ctx.metric("exactly_once",
               [comm, group] { return comm->monitor().exactly_once(group) ? 1.0 : 0.0; });
    return [comm](MhId sender) { comm->send_group_message(sender); };
  }
  if (spec.variant == "always_inform") {
    auto* comm = &ctx.emplace<group::AlwaysInformGroup>(net, group);
    ctx.metric("exactly_once",
               [comm, group] { return comm->monitor().exactly_once(group) ? 1.0 : 0.0; });
    return [comm](MhId sender) { comm->send_group_message(sender); };
  }
  if (spec.variant == "location_view") {
    auto* comm = &ctx.emplace<group::LocationViewGroup>(net, group);
    ctx.metric("exactly_once",
               [comm, group] { return comm->monitor().exactly_once(group) ? 1.0 : 0.0; });
    ctx.metric("lv_max", [comm] { return static_cast<double>(comm->max_view_size()); });
    ctx.metric("significant_moves",
               [comm] { return static_cast<double>(comm->significant_moves()); });
    return [comm](MhId sender) { comm->send_group_message(sender); };
  }
  bad_variant(spec, kGroupVariantNames);
}

workload::MobMsgDriver::Config group_driver_config(const ScenarioSpec& spec) {
  workload::MobMsgDriver::Config cfg;
  cfg.messages = spec.param_u64("messages", 40);
  cfg.mob_per_msg = spec.param("mob_per_msg", 1.0);
  cfg.significant_fraction = spec.param("significant_fraction", 0.5);
  cfg.step = spec.param_u64("step", 40);
  cfg.transit = spec.param_u64("transit", 3);
  return cfg;
}

void build_group(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  // e5's clustered layout: five members across cells 0 and 1 (round
  // robin), cells 0/1 anchored into LV(G), cells 5..7 fresh, mh16 roves.
  require_topology(spec, 8, 18);
  const auto group = group::Group::of({MhId(0), MhId(8), MhId(16), MhId(1), MhId(9)});
  const std::vector<MssId> anchored{MssId(0), MssId(1)};
  const std::vector<MssId> fresh{MssId(5), MssId(6), MssId(7)};
  const auto rover = MhId(16);

  auto strategy_send = build_group_strategy(ctx, group);
  std::function<void(std::uint64_t)> send_fn = [strategy_send](std::uint64_t) {
    strategy_send(MhId(0));
  };

  auto& driver = ctx.emplace<workload::MobMsgDriver>(
      net, group_driver_config(spec), anchored, fresh, rover, std::move(send_fn));
  auto* driver_ptr = &driver;
  ctx.after_start([driver_ptr] { driver_ptr->start(); });
  ctx.metric("moves_scheduled",
             [driver_ptr] { return static_cast<double>(driver_ptr->moves_scheduled()); });
  ctx.metric("significant_scheduled", [driver_ptr] {
    return static_cast<double>(driver_ptr->significant_scheduled());
  });
}

// --- group_mobility: §4 strategies under model-driven mobility (bench e11) -

/// E11's group half: a group of `group_size` members (round-robin over
/// the cells) exchanges `messages` paced group messages while a
/// MobilityModel moves them in the background. Unlike `group` (whose
/// MobMsgDriver scripts an exact significant fraction), the move stream
/// here IS the model under test — skew shows up in workload.mob.f_region_*
/// and the strategies' cost.total splits on it.
void build_group_mobility(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  const auto group_size = static_cast<std::uint32_t>(spec.param_u64("group_size", 8));
  if (group_size < 2) bad_workload(spec, "group_size must be at least 2");
  require_topology(spec, 2, group_size);
  std::vector<MhId> members;
  members.reserve(group_size);
  for (std::uint32_t i = 0; i < group_size; ++i) members.push_back(static_cast<MhId>(i));
  const auto group = group::Group::of(members);

  auto strategy_send = build_group_strategy(ctx, group);

  // Background mobility over the members from the spec's mobility block.
  // When spec.mobility is on, the generic whole-population driver in
  // run_scenario moves them (and everyone else) instead — million-MH
  // generated scenarios use that path.
  if (!spec.mobility) {
    auto& driver = ctx.emplace<mobility::MobilityDriver>(net, spec.mob, members);
    auto* driver_ptr = &driver;
    ctx.after_start([driver_ptr] { driver_ptr->start(); });
    mobility_metrics(ctx, driver);
  }

  const auto messages = spec.param_u64("messages", 24);
  const auto gap = spec.param_u64("message_gap", 60);
  const auto start = spec.param_u64("message_start", 25);
  auto counter = std::make_shared<std::uint64_t>(0);
  workload::paced_calls(net, messages, gap, start,
                        [strategy_send, members, group_size, counter](std::uint64_t seq) {
                          strategy_send(members[seq % group_size]);
                          ++*counter;
                        });
  ctx.metric("messages_sent", [counter] { return static_cast<double>(*counter); });
}

// --- proxy_mutex: Lamport over the three proxy scopes (bench e6) -----------

void build_proxy_mutex(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  const std::uint32_t m = net.num_mss();
  const std::uint32_t n = net.num_mh();
  require_topology(spec, 2, 1);

  proxy::ProxyOptions opts;
  static constexpr std::string_view kNames[] = {"local_mss", "fixed_home", "lazy_home"};
  if (spec.variant == "local_mss") opts.scope = proxy::ProxyScope::kLocalMss;
  else if (spec.variant == "fixed_home") opts.scope = proxy::ProxyScope::kFixedHome;
  else if (spec.variant == "lazy_home") opts.scope = proxy::ProxyScope::kLazyHome;
  else bad_variant(spec, kNames);
  opts.inform_every = static_cast<std::uint32_t>(spec.param_u64("inform_every", 3));

  auto& proxies = ctx.emplace<proxy::ProxyService>(net, opts);
  auto& monitor = ctx.emplace<mutex::CsMonitor>();

  // Which static-host algorithm runs behind the proxies: Lamport by
  // default, the Naimi–Trehel path-reversal engine when the numeric
  // `pathrev` param is non-zero (scenario params are numbers, so the
  // variant string stays the proxy scope).
  std::function<void(MhId)> algo_request;
  std::function<double()> algo_completed;
  if (spec.param_u64("pathrev", 0) != 0) {
    auto* nt = &ctx.emplace<proxy::ProxiedPathRev>(net, proxies, monitor);
    algo_request = [nt](MhId mh) { nt->request(mh); };
    algo_completed = [nt] { return static_cast<double>(nt->completed()); };
    ctx.metric("aborted", [nt] { return static_cast<double>(nt->aborted()); });
  } else {
    auto* lamport = &ctx.emplace<proxy::ProxiedLamport>(net, proxies, monitor);
    algo_request = [lamport](MhId mh) { lamport->request(mh); };
    algo_completed = [lamport] { return static_cast<double>(lamport->completed()); };
  }

  const auto requests = spec.param_u64("requests", 8);
  const auto moves_per_request = spec.param_u64("moves_per_request", 0);
  const std::uint64_t total_moves = moves_per_request * requests;
  for (std::uint64_t move = 0; move < total_moves; ++move) {
    const auto host = static_cast<MhId>(move % n);
    net.sched().schedule_at(1 + 25 * move, [&net, host, m] {
      auto& mobile = net.mh(host);
      if (!mobile.connected()) return;
      const auto next = static_cast<MssId>((net::index(mobile.current_mss()) + 1) % m);
      mobile.move_to(next, 4);
    });
  }
  const sim::SimTime request_start = 10 + 25 * total_moves;
  for (std::uint64_t i = 0; i < requests; ++i) {
    const auto mh = static_cast<MhId>(i % n);
    net.sched().schedule_at(request_start + 60 * i,
                            [algo_request, mh] { algo_request(mh); });
  }

  auto* service = &proxies;
  ctx.metric("informs", [service] { return static_cast<double>(service->informs()); });
  ctx.metric("completed", algo_completed);
  monitor_metrics(ctx, monitor);
}

// --- scale: hot-path throughput driver (bench e8) --------------------------

// The "echo" variant keeps every MH in a chained ping loop against its
// local MSS (uplink data frame, wireless echo back), so fired events grow
// as ~6 x pings x num_mh with realistic Envelope traffic while the
// pending queue stays O(num_mh). The "timers" variant stresses the
// cancellation path instead: each tick schedules `churn` far-future
// timers and cancels the previous batch.

class EchoStation : public net::MssAgent {
 public:
  void on_message(const net::Envelope& env) override {
    if (const auto* value = net::body_as<std::uint64_t>(env)) {
      ++echoed_;
      send_local(env.src.mh(), *value);
    }
  }
  [[nodiscard]] std::uint64_t echoed() const noexcept { return echoed_; }

 private:
  std::uint64_t echoed_ = 0;
};

class EchoHost : public net::MhAgent {
 public:
  void on_message(const net::Envelope&) override { ++received_; }

  /// Send one uplink ping and chain the next `gap` ticks later.
  void ping(std::uint64_t remaining, sim::Duration gap) {
    send_uplink(std::uint64_t{remaining});
    ++sent_;
    if (remaining > 1) {
      net().sched().schedule(gap, [this, remaining, gap] { ping(remaining - 1, gap); });
    }
  }

  [[nodiscard]] std::uint64_t sent() const noexcept { return sent_; }
  [[nodiscard]] std::uint64_t received() const noexcept { return received_; }

 private:
  std::uint64_t sent_ = 0;
  std::uint64_t received_ = 0;
};

/// Timer-churn driver: every tick cancels the previous batch of
/// far-future timers and schedules a fresh one — the schedule-then-regret
/// pattern whose cancelled events linger in the queue until their distant
/// firing time unless the scheduler reclaims them eagerly. Resolves its
/// scheduler through the Network at tick time (not a captured reference):
/// on the sharded engine sched() is the executing shard's queue, so each
/// churner's timers and handles stay on the lane that runs it.
class TimerChurn {
 public:
  explicit TimerChurn(net::Network& net) : net_(net) {}

  void tick(std::uint64_t remaining, std::uint64_t churn, sim::Duration gap) {
    auto& sched = net_.sched();
    for (const auto handle : parked_) {
      if (sched.cancel(handle)) ++cancelled_;
    }
    parked_.clear();
    if (remaining == 0) return;
    constexpr sim::Duration kFarFuture = 1'000'000'000;
    for (std::uint64_t k = 0; k < churn; ++k) {
      parked_.push_back(sched.schedule(kFarFuture + k, [] {}));
    }
    sched.schedule(gap, [this, remaining, churn, gap] {
      tick(remaining - 1, churn, gap);
    });
  }

  [[nodiscard]] std::uint64_t cancelled() const noexcept { return cancelled_; }

 private:
  net::Network& net_;
  std::vector<sim::EventHandle> parked_;
  std::uint64_t cancelled_ = 0;
};

void build_scale(ScenarioContext& ctx) {
  const auto& spec = ctx.spec();
  auto& net = ctx.net();
  require_topology(spec, 1, 1);
  const std::uint32_t n = net.num_mh();
  const auto gap = std::max<std::uint64_t>(1, spec.param_u64("gap", 7));

  if (spec.variant == "echo") {
    const auto pings = spec.param_u64("pings", 50);
    auto& stations = ctx.emplace<std::vector<std::shared_ptr<EchoStation>>>();
    for (std::uint32_t s = 0; s < net.num_mss(); ++s) {
      auto station = std::make_shared<EchoStation>();
      net.mss(static_cast<MssId>(s)).register_agent(net::protocol::kUserBase, station);
      stations.push_back(std::move(station));
    }
    auto& hosts = ctx.emplace<std::vector<std::shared_ptr<EchoHost>>>();
    for (std::uint32_t h = 0; h < n; ++h) {
      auto host = std::make_shared<EchoHost>();
      net.mh(static_cast<MhId>(h)).register_agent(net::protocol::kUserBase, host);
      hosts.push_back(host);
      // Stagger start instants across the gap so uplinks don't all land
      // on the same tick. Primed on the lane owning the host's cell so
      // the sharded engine starts each loop on its own shard.
      auto* driver = host.get();
      net.schedule_on_lane(net.lane_of(obs::Entity::mh(h)), 1 + h % gap,
                           [driver, pings, gap] { driver->ping(pings, gap); });
    }
    ctx.metric("sent", [&hosts] {
      std::uint64_t total = 0;
      for (const auto& host : hosts) total += host->sent();
      return static_cast<double>(total);
    });
    ctx.metric("delivered", [&hosts] {
      std::uint64_t total = 0;
      for (const auto& host : hosts) total += host->received();
      return static_cast<double>(total);
    });
    ctx.metric("echoed", [&stations] {
      std::uint64_t total = 0;
      for (const auto& station : stations) total += station->echoed();
      return static_cast<double>(total);
    });
  } else if (spec.variant == "timers") {
    const auto ticks = spec.param_u64("ticks", 64);
    const auto churn = spec.param_u64("churn", 16);
    auto& drivers = ctx.emplace<std::vector<std::shared_ptr<TimerChurn>>>();
    for (std::uint32_t h = 0; h < n; ++h) {
      auto driver = std::make_shared<TimerChurn>(net);
      drivers.push_back(driver);
      auto* churner = driver.get();
      net.schedule_on_lane(net.lane_of(obs::Entity::mh(h)), 1 + h % gap,
                           [churner, ticks, churn, gap] {
                             churner->tick(ticks, churn, gap);
                           });
    }
    ctx.metric("cancelled", [&drivers] {
      std::uint64_t total = 0;
      for (const auto& driver : drivers) total += driver->cancelled();
      return static_cast<double>(total);
    });
  } else {
    static constexpr std::string_view kNames[] = {"echo", "timers"};
    bad_variant(spec, kNames);
  }
}

// --- harvest ---------------------------------------------------------------

/// `merged` is the canonical merged trace when the run used the sharded
/// engine (whose per-shard streams it supersedes), nullptr for legacy.
void harvest(RunResult& result, const ScenarioSpec& spec, const net::Network& net,
             ScenarioContext& ctx, const std::vector<obs::Event>* merged) {
  auto& m = result.metrics;
  const auto& ledger = net.ledger();
  m["cost.total"] = ledger.total(spec.cost);
  m["cost.energy"] = ledger.total_energy(spec.cost);
  m["ledger.fixed_msgs"] = static_cast<double>(ledger.fixed_msgs());
  m["ledger.wired_packets"] = static_cast<double>(ledger.wired_packets());
  m["ledger.wireless_msgs"] = static_cast<double>(ledger.wireless_msgs());
  m["ledger.searches"] = static_cast<double>(ledger.searches());
  m["ledger.wireless_tx"] = static_cast<double>(ledger.wireless_tx());
  m["ledger.wireless_rx"] = static_cast<double>(ledger.wireless_rx());
  m["sched.fired"] = static_cast<double>(net.total_fired());
  m["sched.hit_event_limit"] = net.hit_event_limit() ? 1.0 : 0.0;
  m["events.emitted"] = static_cast<double>(net.events_emitted());
  m["events.dropped"] = static_cast<double>(net.events_dropped());

  std::uint64_t crashes = 0;
  std::uint64_t recoveries = 0;
  const auto count_event = [&](const obs::Event& event) {
    if (event.kind == obs::EventKind::kMssCrash) ++crashes;
    if (event.kind == obs::EventKind::kMssRecover) ++recoveries;
  };
  if (merged != nullptr) {
    for (const auto& event : *merged) count_event(event);
  } else {
    net.events().for_each(count_event);
  }
  m["events.mss_crash"] = static_cast<double>(crashes);
  m["events.mss_recover"] = static_cast<double>(recoveries);

  for (const auto& [name, counter] : net.metrics().counters()) {
    m[name] = static_cast<double>(counter.value());
  }
  for (const auto& [name, gauge] : net.metrics().gauges()) {
    m[name] = static_cast<double>(gauge.value());
  }
  for (const auto& [name, histogram] : net.metrics().histograms()) {
    m[name + ".count"] = static_cast<double>(histogram.count());
    m[name + ".mean"] = histogram.mean();
    m[name + ".max"] = static_cast<double>(histogram.max());
  }
  for (const auto& [name, producer] : ctx.extras()) {
    m["workload." + name] = producer();
  }
}

std::string cell_slug(std::string_view cell) {
  std::string slug(cell);
  for (char& c : slug) {
    if (std::isalnum(static_cast<unsigned char>(c)) == 0) c = '_';
  }
  return slug;
}

}  // namespace

// --- WorkloadLibrary -------------------------------------------------------

const WorkloadLibrary& WorkloadLibrary::builtin() {
  static const WorkloadLibrary library = [] {
    WorkloadLibrary lib;
    lib.add("mutex", build_mutex);
    lib.add("ring", build_ring);
    lib.add("delivery", build_delivery);
    lib.add("relay_burst", build_relay_burst);
    lib.add("lazy_proxy", build_lazy_proxy);
    lib.add("multicast", build_multicast);
    lib.add("group", build_group);
    lib.add("group_mobility", build_group_mobility);
    lib.add("proxy_mutex", build_proxy_mutex);
    // scale is the one workload whose traffic is entirely lane-local
    // (in-cell echo loops, per-lane timer churn) — the sharded engine's
    // target shape. Everything above moves hosts or chases them.
    lib.add("scale", build_scale, /*shard_safe=*/true);
    return lib;
  }();
  return library;
}

void WorkloadLibrary::add(std::string name, Builder builder, bool shard_safe) {
  builders_.insert_or_assign(std::move(name), Entry{std::move(builder), shard_safe});
}

const WorkloadLibrary::Builder* WorkloadLibrary::find(std::string_view name) const {
  const auto it = builders_.find(name);
  return it == builders_.end() ? nullptr : &it->second.builder;
}

bool WorkloadLibrary::shard_safe(std::string_view name) const {
  const auto it = builders_.find(name);
  return it != builders_.end() && it->second.shard_safe;
}

std::vector<std::string> WorkloadLibrary::names() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) names.push_back(name);
  return names;
}

// --- run_scenario ----------------------------------------------------------

RunResult run_scenario(const RunPlan& plan, const WorkloadLibrary& workloads) {
  RunResult result;
  result.index = plan.index;
  result.cell = plan.cell;
  result.seed = plan.seed;
  try {
    ScenarioSpec spec = plan.spec;
    const auto* builder = workloads.find(spec.workload);
    if (builder == nullptr) {
      throw std::runtime_error("unknown workload '" + spec.workload + "'");
    }

    // Shards axis classification: the sharded engine supports static
    // topologies only, so a requested shard count is honoured only for
    // shard-safe workloads without mobility or faults. Everything else
    // collapses to the legacy engine — identically for EVERY requested
    // count, which is what lets the shard-independence gate sweep the
    // whole scenario matrix.
    if (spec.net.shards != 0 &&
        !(workloads.shard_safe(spec.workload) && !spec.mobility && !spec.has_faults())) {
      spec.net.shards = 0;
    }

    net::Network net(spec.net);
    if (spec.has_faults()) net.install_fault_plane(spec.fault);
    ScenarioContext ctx(spec, net);
    (*builder)(ctx);

    // Generic whole-population mobility; workloads that drive a subset
    // construct their own driver instead of enabling spec.mobility.
    if (spec.mobility) {
      auto& driver = ctx.emplace<mobility::MobilityDriver>(net, spec.mob);
      auto* driver_ptr = &driver;
      ctx.after_start([driver_ptr] { driver_ptr->start(); });
      mobility_metrics(ctx, driver);
    }

    if (ctx.run_until_ != 0 && net.sharded()) {
      // run_until drives one scheduler directly, bypassing the window
      // protocol; no current shard-safe workload requests it, so reject
      // rather than silently run a partial system.
      throw std::runtime_error("run_until is not supported on the sharded engine");
    }

    const auto sim_begin = std::chrono::steady_clock::now();
    net.start();
    for (const auto& hook : ctx.after_start_) hook();
    if (ctx.run_until_ != 0) {
      net.sched().run_until(ctx.run_until_);
    } else {
      net.run();
    }
    result.wall_sec =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - sim_begin)
            .count();

    // Every run is a correctness oracle: the paper's safety properties
    // must hold on the event stream it just produced. The sharded engine
    // is checked on its canonical merged trace (per-shard streams are
    // partial views with cross-stream cause refs).
    std::vector<obs::Event> merged;
    if (net.sharded()) merged = net.merged_events();
    const auto failures = net.sharded()
                              ? obs::check_all(std::span<const obs::Event>(merged))
                              : obs::check_all(net.events());
    if (!failures.empty()) {
      result.error = "trace checkers failed:";
      const std::size_t shown = std::min<std::size_t>(failures.size(), 5);
      for (std::size_t i = 0; i < shown; ++i) {
        result.error += "\n  " + obs::to_string(failures[i]);
      }
      if (failures.size() > shown) {
        result.error += "\n  ... and " + std::to_string(failures.size() - shown) + " more";
      }
      return result;
    }

    harvest(result, spec, net, ctx, net.sharded() ? &merged : nullptr);
    result.ok = true;

    const std::string trace_dir = core::resolve_env_dir("MOBIDIST_TRACE_DIR", "");
    if (!trace_dir.empty()) {
      const std::string base = trace_dir + "TRACE_" + spec.name + "_" +
                               std::to_string(plan.index) + "_" + cell_slug(plan.cell);
      if (net.sharded()) {
        // The canonical merged trace is the sharded engine's exported
        // record — identical bytes for every shard count. The binlog
        // format is a single-ring serialization, so sharded runs fall
        // back to JSONL even under MOBIDIST_TRACE_FORMAT=binlog.
        const std::span<const obs::Event> view(merged);
        core::write_text_file(base + ".jsonl", obs::to_jsonl(view));
        core::write_text_file(base + ".trace.json", obs::to_chrome_trace(view));
      } else if (core::resolve_trace_format() == core::TraceFormat::kBinlog) {
        core::write_text_file(base + ".binlog", obs::serialize_binlog(net.events()));
      } else {
        core::write_text_file(base + ".jsonl", obs::to_jsonl(net.events()));
        core::write_text_file(base + ".trace.json", obs::to_chrome_trace(net.events()));
      }
    }
  } catch (const std::exception& err) {
    result.ok = false;
    result.error = err.what();
  }
  return result;
}

// --- ParallelRunner --------------------------------------------------------

ParallelRunner::ParallelRunner(unsigned jobs) : jobs_(jobs) {
  if (jobs_ == 0) {
    jobs_ = std::max(1u, std::thread::hardware_concurrency());
  }
}

std::vector<RunResult> ParallelRunner::run(const std::vector<RunPlan>& plans,
                                           const RunFn& fn) const {
  std::vector<RunResult> results(plans.size());
  if (plans.empty()) return results;

  auto execute = [&fn](const RunPlan& plan) -> RunResult {
    try {
      return fn(plan);
    } catch (const std::exception& err) {
      RunResult failed;
      failed.index = plan.index;
      failed.cell = plan.cell;
      failed.seed = plan.seed;
      failed.error = err.what();
      return failed;
    }
  };

  const unsigned workers =
      static_cast<unsigned>(std::min<std::size_t>(jobs_, plans.size()));
  if (workers <= 1) {
    for (std::size_t i = 0; i < plans.size(); ++i) results[i] = execute(plans[i]);
    return results;
  }

  // Work stealing by atomic ticket: each worker claims the next
  // unclaimed plan and writes its own results slot, so the result vector
  // is position-stable no matter which thread ran what.
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      while (true) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= plans.size()) break;
        results[i] = execute(plans[i]);
      }
    });
  }
  for (auto& worker : pool) worker.join();
  return results;
}

std::vector<RunResult> ParallelRunner::run(const std::vector<RunPlan>& plans) const {
  return run(plans, [](const RunPlan& plan) { return run_scenario(plan); });
}

}  // namespace mobidist::exp
