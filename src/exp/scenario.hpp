#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

#include "cost/cost_model.hpp"
#include "exp/json.hpp"
#include "fault/fault_plane.hpp"
#include "mobility/mobility_model.hpp"
#include "net/network.hpp"

namespace mobidist::exp {

/// Declarative description of one simulated run: everything the
/// experiment runner needs to build a Network, attach an algorithm
/// workload, drive it, and meter the result. A spec is a pure value —
/// constructible in code, loadable from a small JSON file, and cheap to
/// copy per grid cell.
struct ScenarioSpec {
  std::string name = "scenario";  ///< artifact / display name
  std::string workload = "mutex";  ///< registered workload kind (see runner.hpp)
  std::string variant = "l2";      ///< workload-specific algorithm variant

  net::NetConfig net;        ///< topology, latencies, search mode; seed is per-run
  cost::CostParams cost;     ///< constants the ledger is totalled under
  fault::FaultProfile fault; ///< installed only when non-trivial

  bool mobility = false;             ///< drive background mobility?
  mobility::MobilityConfig mob;      ///< its parameters when enabled

  /// Free-form numeric workload knobs ("requests", "messages", ...).
  /// Workload builders read them with param(); unknown keys are an error
  /// at run time so typos cannot silently become defaults.
  std::map<std::string, double, std::less<>> params;

  [[nodiscard]] double param(std::string_view key, double fallback) const;
  [[nodiscard]] std::uint64_t param_u64(std::string_view key, std::uint64_t fallback) const;

  /// True when the fault profile would perturb the run (mirrors
  /// FaultProfile::trivial(), which the runner uses to decide whether to
  /// install a plane at all).
  [[nodiscard]] bool has_faults() const noexcept { return !fault.trivial(); }
};

/// Set one field by dotted path ("topology.num_mh", "latency.wired_min",
/// "cost.c_search", "fault.wireless_loss", "mobility.mean_pause",
/// "params.requests", "variant", ...). Throws std::runtime_error on an
/// unknown path or a value of the wrong type. This is the single
/// override mechanism shared by scenario-file parsing and sweep axes.
void apply_override(ScenarioSpec& spec, std::string_view key, const json::Value& value);

/// Build a spec from a parsed scenario document. Unknown keys throw (so
/// a misspelled field fails loudly); the "sweep" member is ignored here
/// (see sweep.hpp). Structured fault members ("fault.crashes",
/// "fault.partitions") are parsed from arrays of objects.
[[nodiscard]] ScenarioSpec scenario_from_json(const json::Value& doc);

/// Convenience: parse `text` and build the spec; throws on syntax errors.
[[nodiscard]] ScenarioSpec parse_scenario(std::string_view text);

/// Deterministic JSON rendering of a spec (name-ordered, fixed floating
/// precision) for embedding in artifacts.
[[nodiscard]] std::string to_json(const ScenarioSpec& spec);

}  // namespace mobidist::exp
