#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/scenario.hpp"

namespace mobidist::exp {

/// One sweep dimension: a dotted ScenarioSpec path and the values it
/// takes. Values are JSON values so one axis type covers numeric knobs
/// ("topology.num_mh") and enumerations ("variant") alike.
struct SweepAxis {
  std::string key;
  std::vector<json::Value> values;

  [[nodiscard]] static SweepAxis numbers(std::string key, std::vector<double> values);
  [[nodiscard]] static SweepAxis strings(std::string key, std::vector<std::string> values);
};

/// Display form of an axis value ("l1", "16", "0.05"): integers render
/// without a fraction so cell names stay short and stable.
[[nodiscard]] std::string value_label(const json::Value& value);

/// Deterministic per-run seed stream: splitmix64 over (base, index).
/// Expansion derives every run's seed up front, single-threaded, so the
/// seeds — and therefore the results — cannot depend on which thread
/// later executes which run.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept;
[[nodiscard]] std::vector<std::uint64_t> derive_seeds(std::uint64_t base, std::size_t count);

/// One fully resolved run: the spec with every axis override and the
/// seed applied. `cell` identifies the aggregation cell (all axes except
/// the seed), so seeds within a cell are summarized together.
struct RunPlan {
  ScenarioSpec spec;
  std::string cell;       ///< "variant=l1,topology.num_mh=16" or "base"
  std::uint64_t seed = 0; ///< == spec.net.seed
  std::size_t index = 0;  ///< position in the expanded matrix
};

/// The run matrix: a seed list crossed with zero or more spec axes.
/// Expansion order is deterministic: axes vary outermost-first in
/// declaration order, seeds innermost, so runs of one cell are adjacent.
struct SweepGrid {
  std::vector<std::uint64_t> seeds;  ///< explicit seed list (>= 1 entry)
  std::vector<SweepAxis> axes;

  /// Single-seed grid with no axes (one run).
  [[nodiscard]] static SweepGrid single(std::uint64_t seed);

  /// Cross-product expansion; throws std::runtime_error on an unknown
  /// axis key or an empty seed list / axis.
  [[nodiscard]] std::vector<RunPlan> expand(const ScenarioSpec& base) const;
};

/// Parse the "sweep" member of a scenario document:
///   "sweep": {"seeds": [1,2,3], "axes": [{"key": "...", "values": [...]}]}
/// or "seeds": {"base": 42, "count": 8} for a derived stream. A missing
/// "sweep" member yields single(base-spec seed). Throws on malformed input.
[[nodiscard]] SweepGrid sweep_from_json(const json::Value& doc, std::uint64_t default_seed);

}  // namespace mobidist::exp
