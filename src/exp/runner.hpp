#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "exp/sweep.hpp"
#include "net/network.hpp"

namespace mobidist::exp {

/// Flat numeric snapshot of one finished run. Everything the aggregator
/// summarizes is a (name, value) pair: ledger totals under the spec's
/// cost params ("cost.total", "ledger.fixed_msgs", ...), every registry
/// counter and gauge by its own name, histogram digests
/// ("<name>.mean"/".max"/".count"), scheduler and event-stream totals,
/// and the workload's own observables under "workload.*".
struct RunResult {
  std::size_t index = 0;
  std::string cell;
  std::uint64_t seed = 0;
  bool ok = false;
  std::string error;  ///< checker violations or thrown setup errors
  std::map<std::string, double, std::less<>> metrics;
  /// Host wall-clock seconds spent driving the simulation (start + run;
  /// excludes setup and checker validation). Nondeterministic, so it
  /// lives outside `metrics` and never reaches the deterministic
  /// artifact body or the baseline regression gate.
  double wall_sec = 0.0;
};

/// Everything a workload builder may touch while wiring one run. The
/// builder constructs algorithm objects with emplace() (owned until the
/// harvest is done), schedules all activity through net().sched(), and
/// registers post-run observables with metric(). It must NOT call
/// Network::start()/run() — the runner owns the lifecycle.
class ScenarioContext {
 public:
  ScenarioContext(const ScenarioSpec& spec, net::Network& network)
      : spec_(spec), net_(network) {}

  [[nodiscard]] const ScenarioSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] net::Network& net() noexcept { return net_; }

  /// Construct an object that must outlive the simulation (an algorithm,
  /// a monitor, a driver) and keep it owned by this run.
  template <typename T, typename... Args>
  T& emplace(Args&&... args) {
    auto owned = std::make_shared<T>(std::forward<Args>(args)...);
    T& ref = *owned;
    owned_.push_back(std::move(owned));
    return ref;
  }

  /// Register a post-run observable, emitted as "workload.<name>".
  void metric(std::string name, std::function<double()> producer) {
    extras_.emplace_back(std::move(name), std::move(producer));
  }

  /// Truncate the run at virtual time `t` instead of draining the
  /// scheduler (deliberate-stall scenarios).
  void run_until(sim::SimTime t) noexcept { run_until_ = t; }

  /// Invoked by the runner right after Network::start() (mobility
  /// drivers schedule their first departures here).
  void after_start(std::function<void()> hook) { after_start_.push_back(std::move(hook)); }

  [[nodiscard]] const std::vector<std::pair<std::string, std::function<double()>>>&
  extras() const noexcept {
    return extras_;
  }

 private:
  friend RunResult run_scenario(const RunPlan& plan, const class WorkloadLibrary& workloads);

  const ScenarioSpec& spec_;
  net::Network& net_;
  std::vector<std::shared_ptr<void>> owned_;
  std::vector<std::pair<std::string, std::function<double()>>> extras_;
  std::vector<std::function<void()>> after_start_;
  sim::SimTime run_until_ = 0;  ///< 0 = drain
};

/// Named collection of workload builders — an explicit object rather
/// than a process-global registry, so concurrent runners cannot observe
/// each other's registrations.
class WorkloadLibrary {
 public:
  using Builder = std::function<void(ScenarioContext&)>;

  /// All built-in workload kinds: "mutex" (l1|l2), "ring"
  /// (r1|r2|r2p|r2pp), "delivery", "relay_burst", "lazy_proxy",
  /// "multicast" (flood|search), "group" (pure_search|always_inform|
  /// location_view), "proxy_mutex" (local_mss|fixed_home|lazy_home),
  /// "scale" (echo|timers).
  [[nodiscard]] static const WorkloadLibrary& builtin();

  /// `shard_safe` marks a workload that drives only static-topology,
  /// lane-local traffic and may therefore run on the sharded engine.
  /// run_scenario() collapses NetConfig::shards to 0 (legacy) for every
  /// other workload — and for shard-safe ones combined with mobility or
  /// a fault profile — so the shards axis is a pure no-op there.
  void add(std::string name, Builder builder, bool shard_safe = false);
  [[nodiscard]] const Builder* find(std::string_view name) const;
  /// True when `name` was registered shard-safe (false for unknown names).
  [[nodiscard]] bool shard_safe(std::string_view name) const;
  [[nodiscard]] std::vector<std::string> names() const;

 private:
  struct Entry {
    Builder builder;
    bool shard_safe = false;
  };
  std::map<std::string, Entry, std::less<>> builders_;
};

/// Execute one plan end to end: build the Network (per-run instance —
/// no state shared with any other run), install the fault plane when the
/// profile is non-trivial, invoke the workload builder, drive the
/// scheduler, gate on every obs trace checker, then harvest metrics.
/// When MOBIDIST_TRACE_DIR is set the event stream is exported as
/// TRACE_<name>_<index>_<cell>.jsonl (+ Chrome trace), like BenchReport.
/// Never throws: failures come back as ok=false results.
[[nodiscard]] RunResult run_scenario(const RunPlan& plan,
                                     const WorkloadLibrary& workloads =
                                         WorkloadLibrary::builtin());

/// Fixed-size thread pool executing independent plans concurrently.
/// results[i] always corresponds to plans[i], and every run derives all
/// randomness from its plan's seed, so the output is a pure function of
/// the plan list — independent of `jobs` and of thread scheduling.
class ParallelRunner {
 public:
  using RunFn = std::function<RunResult(const RunPlan&)>;

  /// `jobs` = 0 picks std::thread::hardware_concurrency().
  explicit ParallelRunner(unsigned jobs = 0);

  [[nodiscard]] unsigned jobs() const noexcept { return jobs_; }

  [[nodiscard]] std::vector<RunResult> run(const std::vector<RunPlan>& plans,
                                           const RunFn& fn) const;
  /// Convenience: run with the built-in workload library.
  [[nodiscard]] std::vector<RunResult> run(const std::vector<RunPlan>& plans) const;

 private:
  unsigned jobs_;
};

}  // namespace mobidist::exp
