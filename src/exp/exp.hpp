#pragma once

/// Umbrella header for the experiment subsystem: declarative scenarios
/// (ScenarioSpec / JSON files), sweep grids over seeds and spec axes,
/// the thread-pool ParallelRunner (deterministic regardless of thread
/// count), and statistical aggregation with baseline regression gating.

#include "exp/aggregate.hpp"   // IWYU pragma: export
#include "exp/json.hpp"        // IWYU pragma: export
#include "exp/runner.hpp"      // IWYU pragma: export
#include "exp/scenario.hpp"    // IWYU pragma: export
#include "exp/sweep.hpp"       // IWYU pragma: export
