#include "exp/aggregate.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "obs/binlog.hpp"

namespace mobidist::exp {

namespace {

/// Shortest round-trip double rendering (json::format_double): the
/// snprintf "%.6f" it replaces honoured the process locale's decimal
/// separator and truncated to six fractional digits, so artifact bytes
/// could differ across environments and re-parsed values across runs.
std::string num(double v) { return json::format_double(v); }

std::string quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void append_summary(std::string& out, const MetricSummary& s) {
  out += "{\"max\":" + num(s.max) + ",\"mean\":" + num(s.mean) +
         ",\"min\":" + num(s.min) + ",\"n\":" + std::to_string(s.n) +
         ",\"p50\":" + num(s.p50) + ",\"p99\":" + num(s.p99) +
         ",\"stddev\":" + num(s.stddev) + "}";
}

void append_body(std::string& out, const SweepReport& r) {
  out += "\"schema_version\":" + std::to_string(kSweepSchemaVersion);
  out += ",\"name\":" + quote(r.name);
  out += ",\"seeds\":[";
  for (std::size_t i = 0; i < r.seeds.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(r.seeds[i]);
  }
  out += "],\"axes\":[";
  for (std::size_t i = 0; i < r.axes.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"key\":" + quote(r.axes[i].first) +
           ",\"values\":" + quote(r.axes[i].second) + "}";
  }
  out += "],\"cells\":[";
  for (std::size_t c = 0; c < r.cells.size(); ++c) {
    const auto& cell = r.cells[c];
    if (c != 0) out += ',';
    out += "{\"cell\":" + quote(cell.cell);
    out += ",\"seeds\":[";
    for (std::size_t i = 0; i < cell.seeds.size(); ++i) {
      if (i != 0) out += ',';
      out += std::to_string(cell.seeds[i]);
    }
    out += "],\"failed\":" + std::to_string(cell.failed);
    if (!cell.errors.empty()) {
      out += ",\"errors\":[";
      for (std::size_t i = 0; i < cell.errors.size(); ++i) {
        if (i != 0) out += ',';
        out += quote(cell.errors[i]);
      }
      out += ']';
    }
    out += ",\"metrics\":{";
    bool first = true;
    for (const auto& [name, summary] : cell.metrics) {
      if (!first) out += ',';
      first = false;
      out += quote(name) + ":";
      append_summary(out, summary);
    }
    out += "}}";
  }
  out += ']';
}

}  // namespace

MetricSummary MetricSummary::of(std::vector<double> sample) {
  MetricSummary s;
  s.n = sample.size();
  if (sample.empty()) return s;
  std::sort(sample.begin(), sample.end());
  s.min = sample.front();
  s.max = sample.back();
  double sum = 0.0;
  for (const double v : sample) sum += v;
  s.mean = sum / static_cast<double>(s.n);
  if (s.n > 1) {
    double sq = 0.0;
    for (const double v : sample) sq += (v - s.mean) * (v - s.mean);
    s.stddev = std::sqrt(sq / static_cast<double>(s.n - 1));
  }
  // Nearest-rank percentile: smallest value with cumulative share >= p.
  const auto rank = [&](double p) {
    const auto idx = static_cast<std::size_t>(
        std::ceil(p * static_cast<double>(s.n)));
    return sample[std::min(s.n - 1, idx == 0 ? 0 : idx - 1)];
  };
  s.p50 = rank(0.50);
  s.p99 = rank(0.99);
  return s;
}

SweepReport aggregate(const std::string& name, const SweepGrid& grid,
                      const std::vector<RunPlan>& plans,
                      const std::vector<RunResult>& results) {
  SweepReport report;
  report.name = name;
  report.seeds = grid.seeds;
  for (const auto& axis : grid.axes) {
    std::string joined;
    for (const auto& value : axis.values) {
      if (!joined.empty()) joined += ',';
      joined += value_label(value);
    }
    report.axes.emplace_back(axis.key, joined);
  }

  // Plans are expanded cell-major (seeds adjacent), so walking in plan
  // order yields each cell exactly once, in expansion order.
  for (std::size_t i = 0; i < plans.size() && i < results.size(); ++i) {
    const auto& plan = plans[i];
    const auto& result = results[i];
    if (report.cells.empty() || report.cells.back().cell != plan.cell) {
      CellSummary cell;
      cell.cell = plan.cell;
      report.cells.push_back(std::move(cell));
    }
    auto& cell = report.cells.back();
    if (!result.ok) {
      ++cell.failed;
      constexpr std::size_t kMaxErrors = 4;
      if (cell.errors.size() < kMaxErrors &&
          std::find(cell.errors.begin(), cell.errors.end(), result.error) ==
              cell.errors.end()) {
        cell.errors.push_back(result.error);
      }
      continue;
    }
    cell.seeds.push_back(result.seed);
    // Sink-health provenance: binlog counters ride in the harvested
    // events.* metrics; retained = emitted - dropped by construction.
    const auto emitted = result.metrics.find("events.emitted");
    const auto dropped = result.metrics.find("events.dropped");
    if (emitted != result.metrics.end() && dropped != result.metrics.end()) {
      report.binlog_emitted += static_cast<std::uint64_t>(emitted->second);
      report.binlog_dropped += static_cast<std::uint64_t>(dropped->second);
      report.binlog_bytes += static_cast<std::uint64_t>(emitted->second - dropped->second) *
                             sizeof(obs::BinRecord);
    }
  }

  // Second pass per cell: collect each metric's sample across ok runs.
  std::size_t cursor = 0;
  for (auto& cell : report.cells) {
    std::map<std::string, std::vector<double>, std::less<>> samples;
    std::vector<double> walls;
    std::vector<double> rates;
    while (cursor < plans.size() && plans[cursor].cell == cell.cell) {
      const auto& result = results[cursor];
      if (result.ok) {
        for (const auto& [metric, value] : result.metrics) {
          samples[metric].push_back(value);
        }
        if (result.wall_sec > 0.0) {
          walls.push_back(result.wall_sec);
          if (const auto it = result.metrics.find("sched.fired");
              it != result.metrics.end()) {
            rates.push_back(it->second / result.wall_sec);
          }
        }
      }
      ++cursor;
    }
    for (auto& [metric, sample] : samples) {
      cell.metrics.emplace(metric, MetricSummary::of(std::move(sample)));
    }
    if (!walls.empty()) cell.wall_sec = MetricSummary::of(std::move(walls));
    if (!rates.empty()) cell.events_per_sec = MetricSummary::of(std::move(rates));
  }
  return report;
}

std::string SweepReport::deterministic_json() const {
  std::string out = "{";
  append_body(out, *this);
  out += '}';
  return out;
}

std::string SweepReport::json() const {
  std::string out = "{";
  append_body(out, *this);
  out += ",\"provenance\":{\"git_sha\":" + quote(git_sha) +
         ",\"jobs\":" + std::to_string(jobs) +
         ",\"shards\":" + std::to_string(shards) +
         ",\"wall_clock_sec\":" + num(wall_clock_sec) +
         ",\"binlog\":{\"emitted\":" + std::to_string(binlog_emitted) +
         ",\"dropped\":" + std::to_string(binlog_dropped) +
         ",\"bytes\":" + std::to_string(binlog_bytes) + "}";
  // Per-cell host timing (wall seconds and scheduler events/sec). Kept
  // under provenance so the deterministic body — and therefore the
  // jobs-independence guarantee and the regression gate — never sees a
  // machine-dependent number.
  out += ",\"timing\":[";
  bool first = true;
  for (const auto& cell : cells) {
    if (cell.wall_sec.n == 0) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"cell\":" + quote(cell.cell) + ",\"wall_sec\":";
    append_summary(out, cell.wall_sec);
    out += ",\"events_per_sec\":";
    append_summary(out, cell.events_per_sec);
    out += '}';
  }
  out += "]}";
  out += '}';
  return out;
}

const CellSummary* SweepReport::find_cell(std::string_view cell) const {
  for (const auto& c : cells) {
    if (c.cell == cell) return &c;
  }
  return nullptr;
}

std::string Regression::to_string() const {
  // Diagnostic text, but keep it locale-independent too: to_chars with
  // fixed precision instead of snprintf "%+.2f".
  char buf[64];
  const double pct = rel_delta * 100.0;
  buf[0] = pct >= 0 ? '+' : '-';
  const auto [ptr, ec] =
      std::to_chars(buf + 1, buf + sizeof buf - 1, std::abs(pct), std::chars_format::fixed, 2);
  std::string delta = ec == std::errc{} ? std::string(buf, ptr) : std::string("?");
  return cell + " / " + metric + ": baseline " + num(baseline) + " -> current " +
         num(current) + " (" + delta + "%)";
}

BaselineComparison compare_to_baseline(const SweepReport& current,
                                       const json::Value& baseline,
                                       double tolerance) {
  BaselineComparison cmp;
  const auto incompatible = [&cmp](std::string why) {
    cmp.compatible = false;
    cmp.incompatibility = std::move(why);
    return cmp;
  };

  const auto* version = baseline.find("schema_version");
  if (version == nullptr || !version->is_number()) {
    return incompatible("baseline has no schema_version");
  }
  if (static_cast<int>(version->as_number()) != kSweepSchemaVersion) {
    return incompatible("baseline schema_version " +
                        value_label(*version) + " != current " +
                        std::to_string(kSweepSchemaVersion));
  }
  const auto* name = baseline.find("name");
  if (name == nullptr || !name->is_string() || name->as_string() != current.name) {
    return incompatible("baseline is for scenario '" +
                        (name != nullptr && name->is_string() ? name->as_string()
                                                              : std::string("?")) +
                        "', current is '" + current.name + "'");
  }
  const auto* seeds = baseline.find("seeds");
  if (seeds == nullptr || !seeds->is_array()) {
    return incompatible("baseline has no seed list");
  }
  std::vector<std::uint64_t> base_seeds;
  for (const auto& seed : seeds->as_array()) {
    if (seed.is_number()) base_seeds.push_back(seed.as_u64());
  }
  if (base_seeds != current.seeds) {
    return incompatible("seed lists differ (baseline " +
                        std::to_string(base_seeds.size()) + " seeds, current " +
                        std::to_string(current.seeds.size()) +
                        ") — distributions are not comparable");
  }
  const auto* cells = baseline.find("cells");
  if (cells == nullptr || !cells->is_array()) {
    return incompatible("baseline has no cells");
  }

  std::set<std::string> base_names;
  for (const auto& cell : cells->as_array()) {
    if (const auto* n = cell.find("cell"); n != nullptr && n->is_string()) {
      base_names.insert(n->as_string());
    }
  }
  std::set<std::string> cur_names;
  for (const auto& cell : current.cells) cur_names.insert(cell.cell);
  if (base_names != cur_names) {
    return incompatible("cell sets differ — the sweep grid changed");
  }

  cmp.compatible = true;
  constexpr double kEps = 1e-9;
  for (const auto& cell : cells->as_array()) {
    const auto* cell_name = cell.find("cell");
    const auto* metrics = cell.find("metrics");
    if (cell_name == nullptr || metrics == nullptr || !metrics->is_object()) continue;
    const auto* cur_cell = current.find_cell(cell_name->as_string());
    if (cur_cell == nullptr) continue;
    for (const auto& [metric, summary] : metrics->as_object()) {
      const auto it = cur_cell->metrics.find(metric);
      if (it == cur_cell->metrics.end()) continue;  // metric renamed/removed
      const auto* mean = summary.find("mean");
      if (mean == nullptr || !mean->is_number()) continue;
      ++cmp.metrics_compared;
      const double base_mean = mean->as_number();
      const double cur_mean = it->second.mean;
      const double denom = std::max(std::abs(base_mean), kEps);
      const double rel = (cur_mean - base_mean) / denom;
      if (std::abs(rel) > tolerance) {
        Regression reg;
        reg.cell = cell_name->as_string();
        reg.metric = metric;
        reg.baseline = base_mean;
        reg.current = cur_mean;
        reg.rel_delta = rel;
        cmp.regressions.push_back(std::move(reg));
      }
    }
  }
  return cmp;
}

std::optional<json::Value> load_artifact(const std::string& path, std::string& error) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    error = "cannot open '" + path + "'";
    return std::nullopt;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  auto parsed = json::parse(buf.str());
  if (!parsed) {
    error = "'" + path + "' is not valid JSON";
    return std::nullopt;
  }
  if (!parsed->is_object()) {
    error = "'" + path + "' is not a JSON object";
    return std::nullopt;
  }
  error.clear();
  return parsed;
}

}  // namespace mobidist::exp
