#include "exp/scenario.hpp"

#include <cmath>
#include <cstdio>
#include <functional>
#include <sstream>
#include <stdexcept>

#include "core/report.hpp"
#include "exp/json.hpp"

namespace mobidist::exp {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("scenario: " + what); }

double require_number(std::string_view key, const json::Value& value) {
  if (!value.is_number()) fail("field '" + std::string(key) + "' must be a number");
  return value.as_number();
}

std::uint64_t require_u64(std::string_view key, const json::Value& value) {
  const double n = require_number(key, value);
  if (n < 0 || n != std::floor(n)) {
    fail("field '" + std::string(key) + "' must be a non-negative integer");
  }
  // as_u64 preserves integer literals beyond double's 53-bit mantissa
  // (full-range seeds in particular).
  return value.as_u64();
}

std::uint32_t require_u32(std::string_view key, const json::Value& value) {
  return static_cast<std::uint32_t>(require_u64(key, value));
}

bool require_bool(std::string_view key, const json::Value& value) {
  if (value.is_bool()) return value.as_bool();
  // Sweep axes express everything as numbers or strings; accept 0/1.
  if (value.is_number() && (value.as_number() == 0.0 || value.as_number() == 1.0)) {
    return value.as_number() != 0.0;
  }
  fail("field '" + std::string(key) + "' must be a bool (or 0/1)");
}

std::string require_string(std::string_view key, const json::Value& value) {
  if (!value.is_string()) fail("field '" + std::string(key) + "' must be a string");
  return value.as_string();
}

net::SearchMode parse_search(std::string_view key, const json::Value& value) {
  const auto text = require_string(key, value);
  if (text == "oracle") return net::SearchMode::kOracle;
  if (text == "broadcast") return net::SearchMode::kBroadcast;
  fail("unknown search mode '" + text + "' (oracle|broadcast)");
}

net::InitialPlacement parse_placement(std::string_view key, const json::Value& value) {
  const auto text = require_string(key, value);
  if (text == "round_robin") return net::InitialPlacement::kRoundRobin;
  if (text == "random") return net::InitialPlacement::kRandom;
  if (text == "all_in_cell0") return net::InitialPlacement::kAllInCell0;
  fail("unknown placement '" + text + "' (round_robin|random|all_in_cell0)");
}

/// Pattern names come from mobility::kMovePatternNames — one source of
/// truth shared with the model factory and the generator CLI, so a new
/// model is automatically parseable and enumerated in this error.
mobility::MovePattern parse_pattern(std::string_view key, const json::Value& value) {
  const auto text = require_string(key, value);
  if (const auto pattern = mobility::pattern_from_name(text)) return *pattern;
  std::string valid;
  for (const auto name : mobility::kMovePatternNames) {
    if (!valid.empty()) valid += '|';
    valid += name;
  }
  fail("unknown mobility pattern '" + text + "' (" + valid + ")");
}

const char* search_name(net::SearchMode mode) {
  return mode == net::SearchMode::kOracle ? "oracle" : "broadcast";
}

const char* placement_name(net::InitialPlacement placement) {
  switch (placement) {
    case net::InitialPlacement::kRoundRobin: return "round_robin";
    case net::InitialPlacement::kRandom: return "random";
    case net::InitialPlacement::kAllInCell0: return "all_in_cell0";
  }
  return "unknown";
}

/// Shortest round-trip double rendering for scenario re-serialization;
/// locale-independent and exact, unlike the snprintf "%.6f" it replaces.
std::string real(double value) { return json::format_double(value); }

}  // namespace

double ScenarioSpec::param(std::string_view key, double fallback) const {
  const auto it = params.find(key);
  return it == params.end() ? fallback : it->second;
}

std::uint64_t ScenarioSpec::param_u64(std::string_view key, std::uint64_t fallback) const {
  const auto it = params.find(key);
  if (it == params.end()) return fallback;
  if (it->second < 0 || it->second != std::floor(it->second)) {
    fail("param '" + std::string(key) + "' must be a non-negative integer");
  }
  return static_cast<std::uint64_t>(it->second);
}

void apply_override(ScenarioSpec& spec, std::string_view key, const json::Value& value) {
  if (key == "name") { spec.name = require_string(key, value); return; }
  if (key == "workload") { spec.workload = require_string(key, value); return; }
  if (key == "variant") { spec.variant = require_string(key, value); return; }

  if (key == "topology.num_mss") { spec.net.num_mss = require_u32(key, value); return; }
  if (key == "topology.num_mh") { spec.net.num_mh = require_u32(key, value); return; }
  if (key == "topology.seed") { spec.net.seed = require_u64(key, value); return; }
  if (key == "topology.search") { spec.net.search = parse_search(key, value); return; }
  if (key == "topology.placement") { spec.net.placement = parse_placement(key, value); return; }
  if (key == "topology.charge_search_for_local") {
    spec.net.charge_search_for_local = require_bool(key, value);
    return;
  }
  if (key == "topology.shards") { spec.net.shards = require_u32(key, value); return; }

  auto& lat = spec.net.latency;
  if (key == "latency.wired_min") { lat.wired_min = require_u64(key, value); return; }
  if (key == "latency.wired_max") { lat.wired_max = require_u64(key, value); return; }
  if (key == "latency.wireless_min") { lat.wireless_min = require_u64(key, value); return; }
  if (key == "latency.wireless_max") { lat.wireless_max = require_u64(key, value); return; }
  if (key == "latency.search_min") { lat.search_min = require_u64(key, value); return; }
  if (key == "latency.search_max") { lat.search_max = require_u64(key, value); return; }
  if (key == "latency.broadcast_retry") { lat.broadcast_retry = require_u64(key, value); return; }
  /// "latency.wired" and friends set min == max in one stroke — the
  /// common deterministic-latency case sweeps read better with one axis.
  if (key == "latency.wired") {
    lat.wired_min = lat.wired_max = require_u64(key, value);
    return;
  }
  if (key == "latency.wireless") {
    lat.wireless_min = lat.wireless_max = require_u64(key, value);
    return;
  }
  if (key == "latency.search") {
    lat.search_min = lat.search_max = require_u64(key, value);
    return;
  }

  if (key == "cost.c_fixed") { spec.cost.c_fixed = require_number(key, value); return; }
  if (key == "cost.c_wired_msg") { spec.cost.c_wired_msg = require_number(key, value); return; }
  if (key == "cost.c_wireless") { spec.cost.c_wireless = require_number(key, value); return; }
  if (key == "cost.c_search") { spec.cost.c_search = require_number(key, value); return; }
  if (key == "cost.energy_tx") { spec.cost.energy_tx = require_number(key, value); return; }
  if (key == "cost.energy_rx") { spec.cost.energy_rx = require_number(key, value); return; }

  auto& f = spec.fault;
  if (key == "fault.wireless_loss") { f.wireless_loss = require_number(key, value); return; }
  if (key == "fault.wireless_dup") { f.wireless_dup = require_number(key, value); return; }
  if (key == "fault.wireless_reorder") { f.wireless_reorder = require_number(key, value); return; }
  if (key == "fault.wireless_spike_max") { f.wireless_spike_max = require_u64(key, value); return; }
  if (key == "fault.wired_spike") { f.wired_spike = require_number(key, value); return; }
  if (key == "fault.wired_spike_max") { f.wired_spike_max = require_u64(key, value); return; }
  if (key == "fault.evacuate_on_crash") { f.evacuate_on_crash = require_bool(key, value); return; }
  if (key == "fault.drop_first_wireless") { f.drop_first_wireless = require_u32(key, value); return; }
  if (key == "fault.dup_first_wireless") { f.dup_first_wireless = require_u32(key, value); return; }
  if (key == "fault.rto_base") { f.rto_base = require_u64(key, value); return; }
  if (key == "fault.rto_cap") { f.rto_cap = require_u64(key, value); return; }

  auto& fm = spec.net.formation;
  if (key == "formation.max_packet_msgs") { fm.max_packet_msgs = require_u32(key, value); return; }
  if (key == "formation.max_packet_bytes") { fm.max_packet_bytes = require_u32(key, value); return; }
  if (key == "formation.flush_deadline") { fm.flush_deadline = require_u64(key, value); return; }

  auto& m = spec.mob;
  if (key == "mobility.enabled") { spec.mobility = require_bool(key, value); return; }
  if (key == "mobility.pattern") { m.pattern = parse_pattern(key, value); return; }
  if (key == "mobility.mean_pause") { m.mean_pause = require_number(key, value); return; }
  if (key == "mobility.mean_transit") { m.mean_transit = require_number(key, value); return; }
  if (key == "mobility.zipf_s") { m.zipf_s = require_number(key, value); return; }
  if (key == "mobility.max_moves_per_host") { m.max_moves_per_host = require_u64(key, value); return; }
  if (key == "mobility.stop_at") { m.stop_at = require_u64(key, value); return; }
  if (key == "mobility.disconnect_prob") { m.disconnect_prob = require_number(key, value); return; }
  if (key == "mobility.mean_disconnect") { m.mean_disconnect = require_number(key, value); return; }
  if (key == "mobility.regions") { m.regions = require_u32(key, value); return; }
  if (key == "mobility.grid_width") { m.grid_width = require_u32(key, value); return; }
  if (key == "mobility.phase_period") { m.phase_period = require_u64(key, value); return; }
  if (key == "mobility.day_fraction") { m.day_fraction = require_number(key, value); return; }
  if (key == "mobility.crowd_fraction") { m.crowd_fraction = require_number(key, value); return; }
  if (key == "mobility.crowd_period") { m.crowd_period = require_u64(key, value); return; }
  if (key == "mobility.crowd_dwell") { m.crowd_dwell = require_u64(key, value); return; }

  if (key.substr(0, 7) == "params.") {
    const auto name = key.substr(7);
    if (name.empty()) fail("empty param name");
    spec.params.insert_or_assign(std::string(name), require_number(key, value));
    return;
  }

  fail("unknown field '" + std::string(key) + "'");
}

namespace {

fault::MssCrash crash_from_json(const json::Value& item) {
  if (!item.is_object()) fail("fault.crashes entries must be objects");
  fault::MssCrash crash;
  for (const auto& [key, value] : item.as_object()) {
    if (key == "mss") crash.mss = require_u32("fault.crashes.mss", value);
    else if (key == "at") crash.at = require_u64("fault.crashes.at", value);
    else if (key == "down_for") crash.down_for = require_u64("fault.crashes.down_for", value);
    else fail("unknown field 'fault.crashes." + key + "'");
  }
  return crash;
}

fault::CellPartition partition_from_json(const json::Value& item) {
  if (!item.is_object()) fail("fault.partitions entries must be objects");
  fault::CellPartition part;
  for (const auto& [key, value] : item.as_object()) {
    if (key == "a") part.a = require_u32("fault.partitions.a", value);
    else if (key == "b") part.b = require_u32("fault.partitions.b", value);
    else if (key == "from") part.from = require_u64("fault.partitions.from", value);
    else if (key == "until") part.until = require_u64("fault.partitions.until", value);
    else fail("unknown field 'fault.partitions." + key + "'");
  }
  return part;
}

/// Flatten one section object into dotted apply_override calls, special-
/// casing the structured fault arrays.
void apply_section(ScenarioSpec& spec, const std::string& prefix, const json::Value& section) {
  if (!section.is_object()) fail("'" + prefix + "' must be an object");
  for (const auto& [key, value] : section.as_object()) {
    const std::string path = prefix + "." + key;
    if (path == "fault.crashes") {
      if (!value.is_array()) fail("fault.crashes must be an array");
      for (const auto& item : value.as_array()) spec.fault.crashes.push_back(crash_from_json(item));
      continue;
    }
    if (path == "fault.partitions") {
      if (!value.is_array()) fail("fault.partitions must be an array");
      for (const auto& item : value.as_array()) {
        spec.fault.partitions.push_back(partition_from_json(item));
      }
      continue;
    }
    apply_override(spec, path, value);
  }
}

}  // namespace

ScenarioSpec scenario_from_json(const json::Value& doc) {
  if (!doc.is_object()) fail("document must be a JSON object");
  ScenarioSpec spec;
  for (const auto& [key, value] : doc.as_object()) {
    if (key == "sweep") continue;  // consumed by sweep.hpp
    if (key == "name" || key == "workload" || key == "variant") {
      apply_override(spec, key, value);
      continue;
    }
    if (key == "topology" || key == "latency" || key == "cost" || key == "formation" ||
        key == "fault" || key == "mobility" || key == "params") {
      apply_section(spec, key, value);
      continue;
    }
    fail("unknown top-level field '" + key + "'");
  }
  return spec;
}

ScenarioSpec parse_scenario(std::string_view text) {
  const auto doc = json::parse(text);
  if (!doc) fail("malformed JSON");
  return scenario_from_json(*doc);
}

std::string to_json(const ScenarioSpec& spec) {
  std::ostringstream os;
  const auto& lat = spec.net.latency;
  const auto& f = spec.fault;
  os << "{\"name\":\"" << core::json_escape(spec.name) << "\",\"workload\":\""
     << core::json_escape(spec.workload) << "\",\"variant\":\""
     << core::json_escape(spec.variant) << "\",\"topology\":{\"num_mss\":"
     << spec.net.num_mss << ",\"num_mh\":" << spec.net.num_mh << ",\"search\":\""
     << search_name(spec.net.search) << "\",\"placement\":\""
     << placement_name(spec.net.placement) << "\",\"charge_search_for_local\":"
     << (spec.net.charge_search_for_local ? "true" : "false");
  // Emitted only when set so pre-sharding artifact bodies stay
  // byte-identical.
  if (spec.net.shards != 0) os << ",\"shards\":" << spec.net.shards;
  os << "},\"latency\":{\"wired_min\":" << lat.wired_min << ",\"wired_max\":" << lat.wired_max
     << ",\"wireless_min\":" << lat.wireless_min << ",\"wireless_max\":" << lat.wireless_max
     << ",\"search_min\":" << lat.search_min << ",\"search_max\":" << lat.search_max
     << ",\"broadcast_retry\":" << lat.broadcast_retry
     << "},\"cost\":{\"c_fixed\":" << real(spec.cost.c_fixed)
     << ",\"c_wired_msg\":" << real(spec.cost.c_wired_msg)
     << ",\"c_wireless\":" << real(spec.cost.c_wireless)
     << ",\"c_search\":" << real(spec.cost.c_search)
     << ",\"energy_tx\":" << real(spec.cost.energy_tx)
     << ",\"energy_rx\":" << real(spec.cost.energy_rx) << "}";
  if (!spec.net.formation.passthrough()) {
    os << ",\"formation\":{\"flush_deadline\":" << spec.net.formation.flush_deadline
       << ",\"max_packet_bytes\":" << spec.net.formation.max_packet_bytes
       << ",\"max_packet_msgs\":" << spec.net.formation.max_packet_msgs << '}';
  }
  if (spec.has_faults()) {
    os << ",\"fault\":{\"wireless_loss\":" << real(f.wireless_loss)
       << ",\"wireless_dup\":" << real(f.wireless_dup)
       << ",\"wireless_reorder\":" << real(f.wireless_reorder)
       << ",\"wired_spike\":" << real(f.wired_spike) << ",\"crashes\":[";
    for (std::size_t i = 0; i < f.crashes.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"mss\":" << f.crashes[i].mss << ",\"at\":" << f.crashes[i].at
         << ",\"down_for\":" << f.crashes[i].down_for << '}';
    }
    os << "],\"partitions\":[";
    for (std::size_t i = 0; i < f.partitions.size(); ++i) {
      if (i != 0) os << ',';
      os << "{\"a\":" << f.partitions[i].a << ",\"b\":" << f.partitions[i].b
         << ",\"from\":" << f.partitions[i].from << ",\"until\":" << f.partitions[i].until
         << '}';
    }
    os << "]}";
  }
  if (spec.mobility) {
    // Fields beyond the original trio are emitted only when non-default,
    // keeping pre-library scenario bodies (and golden artifacts)
    // byte-identical.
    const mobility::MobilityConfig defaults;
    const auto& mob = spec.mob;
    os << ",\"mobility\":{\"enabled\":true,\"pattern\":\"" << pattern_name(mob.pattern)
       << "\",\"mean_pause\":" << real(mob.mean_pause)
       << ",\"mean_transit\":" << real(mob.mean_transit);
    if (mob.zipf_s != defaults.zipf_s) os << ",\"zipf_s\":" << real(mob.zipf_s);
    if (mob.max_moves_per_host != UINT64_MAX) {
      os << ",\"max_moves_per_host\":" << mob.max_moves_per_host;
    }
    if (mob.stop_at != sim::kTimeNever) os << ",\"stop_at\":" << mob.stop_at;
    if (mob.disconnect_prob != defaults.disconnect_prob) {
      os << ",\"disconnect_prob\":" << real(mob.disconnect_prob);
    }
    if (mob.mean_disconnect != defaults.mean_disconnect) {
      os << ",\"mean_disconnect\":" << real(mob.mean_disconnect);
    }
    if (mob.regions != defaults.regions) os << ",\"regions\":" << mob.regions;
    if (mob.grid_width != defaults.grid_width) os << ",\"grid_width\":" << mob.grid_width;
    if (mob.phase_period != defaults.phase_period) {
      os << ",\"phase_period\":" << mob.phase_period;
    }
    if (mob.day_fraction != defaults.day_fraction) {
      os << ",\"day_fraction\":" << real(mob.day_fraction);
    }
    if (mob.crowd_fraction != defaults.crowd_fraction) {
      os << ",\"crowd_fraction\":" << real(mob.crowd_fraction);
    }
    if (mob.crowd_period != defaults.crowd_period) {
      os << ",\"crowd_period\":" << mob.crowd_period;
    }
    if (mob.crowd_dwell != defaults.crowd_dwell) os << ",\"crowd_dwell\":" << mob.crowd_dwell;
    os << '}';
  }
  os << ",\"params\":{";
  bool first = true;
  for (const auto& [key, value] : spec.params) {
    if (!first) os << ',';
    first = false;
    os << '"' << core::json_escape(key) << "\":" << real(value);
  }
  os << "}}";
  return os.str();
}

}  // namespace mobidist::exp
