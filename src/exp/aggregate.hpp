#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "exp/json.hpp"
#include "exp/runner.hpp"
#include "exp/sweep.hpp"

namespace mobidist::exp {

/// Artifact format version. Bumped whenever the aggregated-JSON layout
/// changes incompatibly; baseline comparison refuses artifacts whose
/// version differs.
inline constexpr int kSweepSchemaVersion = 1;

/// Distribution of one metric across the seeds of one cell.
struct MetricSummary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  ///< sample standard deviation (n-1); 0 when n < 2
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;  ///< nearest-rank percentiles over the seed sample
  double p99 = 0.0;

  /// Summarize a non-empty sample (order irrelevant).
  [[nodiscard]] static MetricSummary of(std::vector<double> sample);
};

/// All runs of one sweep cell (same spec, different seeds) summarized
/// per metric. Metrics are name-ordered for byte-stable serialization.
struct CellSummary {
  std::string cell;
  std::vector<std::uint64_t> seeds;        ///< seeds that produced ok runs
  std::size_t failed = 0;                  ///< runs with ok == false
  std::vector<std::string> errors;         ///< distinct error strings (capped)
  std::map<std::string, MetricSummary, std::less<>> metrics;
  /// Host wall-clock seconds per ok run and derived scheduler throughput
  /// (sched.fired / wall_sec). Nondeterministic provenance: serialized
  /// by json() only, never part of the deterministic body or the
  /// baseline gate.
  MetricSummary wall_sec;
  MetricSummary events_per_sec;
};

/// The whole aggregated artifact: deterministic body plus optional
/// provenance. deterministic_json() omits wall_clock/git_sha/jobs so the
/// bytes are a pure function of the plan list and the simulation.
struct SweepReport {
  std::string name;
  std::vector<std::uint64_t> seeds;              ///< the grid's seed list
  std::vector<std::pair<std::string, std::string>> axes;  ///< key -> joined labels
  std::vector<CellSummary> cells;                ///< expansion (cell) order

  // Provenance (excluded from deterministic output).
  unsigned jobs = 0;
  double wall_clock_sec = 0.0;
  std::string git_sha;
  /// Shard count requested for the sweep (mobidist_sweep --shards); 0 =
  /// legacy engine. Provenance because the deterministic body is
  /// guaranteed identical across shard counts — recording which count
  /// produced an artifact must not change its gated bytes.
  std::uint32_t shards = 0;
  /// Telemetry-sink totals summed across ok runs (emitted/dropped from
  /// the per-run events.* metrics, bytes = retained × record size):
  /// lets artifact consumers spot a truncated event stream behind the
  /// numbers. Deterministic, but kept in provenance with the other
  /// sink-health facts rather than in the gated body.
  std::uint64_t binlog_emitted = 0;
  std::uint64_t binlog_dropped = 0;
  std::uint64_t binlog_bytes = 0;

  [[nodiscard]] std::string deterministic_json() const;
  [[nodiscard]] std::string json() const;

  [[nodiscard]] const CellSummary* find_cell(std::string_view cell) const;
};

/// Group position-stable results by cell (plan order preserved) and
/// summarize every metric across each cell's ok seeds.
[[nodiscard]] SweepReport aggregate(const std::string& name, const SweepGrid& grid,
                                    const std::vector<RunPlan>& plans,
                                    const std::vector<RunResult>& results);

/// One baseline-vs-current discrepancy.
struct Regression {
  std::string cell;
  std::string metric;
  double baseline = 0.0;
  double current = 0.0;
  double rel_delta = 0.0;  ///< (current - baseline) / max(|baseline|, eps)
  [[nodiscard]] std::string to_string() const;
};

/// Outcome of comparing a fresh report against a committed baseline
/// artifact. `compatible` is false when the artifacts cannot be compared
/// at all (schema version, scenario name, seed list, or cell set
/// mismatch) — callers must treat that as failure, not as a pass.
struct BaselineComparison {
  bool compatible = false;
  std::string incompatibility;     ///< why, when !compatible
  std::vector<Regression> regressions;  ///< metric means drifted > tolerance
  std::size_t metrics_compared = 0;

  [[nodiscard]] bool ok() const noexcept { return compatible && regressions.empty(); }
};

/// Compare metric means cell-by-cell. Any |relative delta| > tolerance
/// is reported — improvements too, because an unexplained drift in a
/// deterministic simulation is a behavior change either way. Metrics
/// present on only one side are ignored (new metrics may be added
/// freely); cells must match exactly.
[[nodiscard]] BaselineComparison compare_to_baseline(const SweepReport& current,
                                                     const json::Value& baseline,
                                                     double tolerance);

/// Parse an aggregated artifact back from disk for use as a baseline.
/// Returns std::nullopt (with a message in `error`) on malformed input.
[[nodiscard]] std::optional<json::Value> load_artifact(const std::string& path,
                                                       std::string& error);

}  // namespace mobidist::exp
