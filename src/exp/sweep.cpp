#include "exp/sweep.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

#include "exp/json.hpp"

namespace mobidist::exp {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("sweep: " + what); }

}  // namespace

SweepAxis SweepAxis::numbers(std::string key, std::vector<double> values) {
  SweepAxis axis;
  axis.key = std::move(key);
  axis.values.reserve(values.size());
  for (const double v : values) axis.values.emplace_back(v);
  return axis;
}

SweepAxis SweepAxis::strings(std::string key, std::vector<std::string> values) {
  SweepAxis axis;
  axis.key = std::move(key);
  axis.values.reserve(values.size());
  for (auto& v : values) axis.values.emplace_back(std::move(v));
  return axis;
}

std::string value_label(const json::Value& value) {
  switch (value.kind()) {
    case json::Value::Kind::kString: return value.as_string();
    case json::Value::Kind::kBool: return value.as_bool() ? "true" : "false";
    case json::Value::Kind::kNumber: {
      const double n = value.as_number();
      if (n == std::floor(n) && std::abs(n) < 1e15) {
        char buf[32];
        std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
        return buf;
      }
      // Shortest round-trip form: locale-independent, and two distinct
      // axis values can never collapse into one cell label the way
      // "%g"'s six significant digits could.
      return json::format_double(n);
    }
    default: return "?";
  }
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t index) noexcept {
  // splitmix64 over the stream position; the +1 keeps (base=0, index=0)
  // away from the all-zero fixed point of the raw mixer input.
  std::uint64_t z = base + (index + 1) * 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::vector<std::uint64_t> derive_seeds(std::uint64_t base, std::size_t count) {
  std::vector<std::uint64_t> seeds;
  seeds.reserve(count);
  for (std::size_t i = 0; i < count; ++i) seeds.push_back(derive_seed(base, i));
  return seeds;
}

SweepGrid SweepGrid::single(std::uint64_t seed) {
  SweepGrid grid;
  grid.seeds = {seed};
  return grid;
}

std::vector<RunPlan> SweepGrid::expand(const ScenarioSpec& base) const {
  if (seeds.empty()) fail("empty seed list");
  for (const auto& axis : axes) {
    if (axis.values.empty()) fail("axis '" + axis.key + "' has no values");
  }

  // Odometer over the axes (outermost = first axis), seeds innermost.
  std::vector<RunPlan> plans;
  std::size_t cells = 1;
  for (const auto& axis : axes) cells *= axis.values.size();
  plans.reserve(cells * seeds.size());

  std::vector<std::size_t> pick(axes.size(), 0);
  for (std::size_t cell = 0; cell < cells; ++cell) {
    ScenarioSpec cell_spec = base;
    std::string cell_name;
    for (std::size_t a = 0; a < axes.size(); ++a) {
      const auto& value = axes[a].values[pick[a]];
      apply_override(cell_spec, axes[a].key, value);
      if (!cell_name.empty()) cell_name += ',';
      cell_name += axes[a].key + "=" + value_label(value);
    }
    if (cell_name.empty()) cell_name = "base";

    for (const std::uint64_t seed : seeds) {
      RunPlan plan;
      plan.spec = cell_spec;
      plan.spec.net.seed = seed;
      plan.cell = cell_name;
      plan.seed = seed;
      plan.index = plans.size();
      plans.push_back(std::move(plan));
    }

    // Advance the odometer: last axis spins fastest.
    for (std::size_t a = axes.size(); a-- > 0;) {
      if (++pick[a] < axes[a].values.size()) break;
      pick[a] = 0;
    }
  }
  return plans;
}

SweepGrid sweep_from_json(const json::Value& doc, std::uint64_t default_seed) {
  const auto* sweep = doc.find("sweep");
  if (sweep == nullptr) return SweepGrid::single(default_seed);
  if (!sweep->is_object()) fail("'sweep' must be an object");

  SweepGrid grid;
  for (const auto& [key, value] : sweep->as_object()) {
    if (key == "seeds") {
      if (value.is_array()) {
        for (const auto& seed : value.as_array()) {
          if (!seed.is_number() || seed.as_number() < 0 ||
              seed.as_number() != std::floor(seed.as_number())) {
            fail("seeds entries must be non-negative integers");
          }
          grid.seeds.push_back(seed.as_u64());
        }
      } else if (value.is_object()) {
        const auto* base = value.find("base");
        const auto* count = value.find("count");
        if (base == nullptr || count == nullptr || !base->is_number() ||
            !count->is_number()) {
          fail("derived seeds need numeric 'base' and 'count'");
        }
        grid.seeds = derive_seeds(base->as_u64(),
                                  static_cast<std::size_t>(count->as_number()));
      } else {
        fail("'seeds' must be an array or {base, count}");
      }
      continue;
    }
    if (key == "axes") {
      if (!value.is_array()) fail("'axes' must be an array");
      for (const auto& item : value.as_array()) {
        const auto* axis_key = item.find("key");
        const auto* values = item.find("values");
        if (axis_key == nullptr || !axis_key->is_string() || values == nullptr ||
            !values->is_array()) {
          fail("each axis needs a string 'key' and an array 'values'");
        }
        SweepAxis axis;
        axis.key = axis_key->as_string();
        axis.values = values->as_array();
        grid.axes.push_back(std::move(axis));
      }
      continue;
    }
    fail("unknown sweep field '" + key + "'");
  }
  if (grid.seeds.empty()) grid.seeds = {default_seed};
  return grid;
}

}  // namespace mobidist::exp
