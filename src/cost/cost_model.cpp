#include "cost/cost_model.hpp"

namespace mobidist::cost {

void CostLedger::charge_wireless(std::uint64_t mh_key, bool mh_transmitted) {
  ++wireless_msgs_;
  auto& counts = per_mh_[mh_key];
  if (mh_transmitted) {
    ++wireless_tx_;
    ++counts.tx;
  } else {
    ++wireless_rx_;
    ++counts.rx;
  }
}

double CostLedger::total(const CostParams& p) const noexcept {
  return static_cast<double>(wired_packets_) * p.c_fixed +
         static_cast<double>(fixed_msgs_) * p.c_wired_msg +
         static_cast<double>(wireless_msgs_) * p.c_wireless +
         static_cast<double>(searches_) * p.c_search;
}

double CostLedger::energy_at(std::uint64_t mh_key, const CostParams& p) const noexcept {
  const auto it = per_mh_.find(mh_key);
  if (it == per_mh_.end()) return 0.0;
  return static_cast<double>(it->second.tx) * p.energy_tx +
         static_cast<double>(it->second.rx) * p.energy_rx;
}

double CostLedger::total_energy(const CostParams& p) const noexcept {
  return static_cast<double>(wireless_tx_) * p.energy_tx +
         static_cast<double>(wireless_rx_) * p.energy_rx;
}

std::uint64_t CostLedger::wireless_hops_at(std::uint64_t mh_key) const noexcept {
  const auto it = per_mh_.find(mh_key);
  if (it == per_mh_.end()) return 0;
  return it->second.tx + it->second.rx;
}

CostLedger CostLedger::delta_since(const CostLedger& baseline) const {
  CostLedger d;
  d.fixed_msgs_ = fixed_msgs_ - baseline.fixed_msgs_;
  d.wired_packets_ = wired_packets_ - baseline.wired_packets_;
  d.wireless_msgs_ = wireless_msgs_ - baseline.wireless_msgs_;
  d.searches_ = searches_ - baseline.searches_;
  d.wireless_tx_ = wireless_tx_ - baseline.wireless_tx_;
  d.wireless_rx_ = wireless_rx_ - baseline.wireless_rx_;
  for (const auto& [key, counts] : per_mh_) {
    EnergyCount base;
    if (const auto it = baseline.per_mh_.find(key); it != baseline.per_mh_.end()) {
      base = it->second;
    }
    d.per_mh_[key] = EnergyCount{counts.tx - base.tx, counts.rx - base.rx};
  }
  return d;
}

void CostLedger::merge_from(const CostLedger& other) {
  fixed_msgs_ += other.fixed_msgs_;
  wired_packets_ += other.wired_packets_;
  wireless_msgs_ += other.wireless_msgs_;
  searches_ += other.searches_;
  wireless_tx_ += other.wireless_tx_;
  wireless_rx_ += other.wireless_rx_;
  for (const auto& [key, counts] : other.per_mh_) {
    auto& mine = per_mh_[key];
    mine.tx += counts.tx;
    mine.rx += counts.rx;
  }
}

void CostLedger::reset() { *this = CostLedger{}; }

}  // namespace mobidist::cost
