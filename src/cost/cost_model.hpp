#pragma once

#include <cstdint>
#include <map>
#include <string>

namespace mobidist::cost {

/// The paper's communication cost parameters (Section 2).
///
/// - c_fixed:    one point-to-point *packet* between two fixed hosts.
///               Without the formation layer every wired message is its
///               own packet, so this is the paper's per-message C_fixed;
///               with batching it becomes the per-packet overhead that
///               coalescing amortizes across the packet's messages.
/// - c_wired_msg: per-message marginal cost of a wired message riding a
///               packet (header/payload bytes). Defaults to 0 so the
///               unbatched total stays exactly fixed * c_fixed, matching
///               the paper's single C_fixed term.
/// - c_wireless: one message between a MH and its local MSS (either way).
/// - c_search:   locating a MH and forwarding a message to its current
///               local MSS from a source MSS. The paper requires
///               c_search >= c_fixed; worst case it is (M-1) queries.
///
/// Energy parameters model battery drain at a MH per wireless
/// transmit/receive, the paper's "power consumption" measure. Defaults
/// give the paper's ordering c_wireless >> c_fixed and unit energy so
/// energy counts equal wireless-hop counts.
struct CostParams {
  double c_fixed = 1.0;
  double c_wired_msg = 0.0;
  double c_wireless = 10.0;
  double c_search = 4.0;
  double energy_tx = 1.0;  ///< MH battery cost per wireless transmission
  double energy_rx = 1.0;  ///< MH battery cost per wireless reception

  /// Worst-case search per the paper: the source MSS contacts each of
  /// the other M-1 MSSs, receives the one positive reply, then forwards
  /// over one more fixed link: (M-1) + 1 + 1 = M+1 fixed messages. This
  /// matches the broadcast search substrate's actual charges.
  [[nodiscard]] static CostParams with_worst_case_search(double cf, double cw, std::uint32_t m) {
    CostParams p;
    p.c_fixed = cf;
    p.c_wireless = cw;
    p.c_search = cf * static_cast<double>(m + 1);
    return p;
  }
};

/// Category of a charged communication action.
enum class CostKind : int {
  kFixedMsg = 0,    ///< wired MSS->MSS message
  kWirelessMsg = 1, ///< wireless hop between a MH and its local MSS
  kSearch = 2,      ///< one logical search for a MH's current MSS
};

/// Append-only account of every communication action in a run.
///
/// The ledger is the measurement instrument behind every experiment:
/// substrates charge it, benches and tests read it. Per-host energy is
/// tracked separately so battery claims (Sections 3.1.1/3.1.2) can be
/// checked per MH.
class CostLedger {
 public:
  /// Charge one unbatched wired MSS->MSS message: it is its own packet,
  /// so both the message and the packet counters advance and the total
  /// matches the paper's per-message C_fixed exactly.
  void charge_fixed() noexcept {
    ++fixed_msgs_;
    ++wired_packets_;
  }

  /// Charge the per-message share of a wired message entering a
  /// formation queue; its packet is charged separately at flush time.
  void charge_wired_msg() noexcept { ++fixed_msgs_; }

  /// Charge one formation packet entering the wire (the amortized
  /// per-packet overhead shared by every message it coalesced).
  void charge_wired_packet() noexcept { ++wired_packets_; }

  /// Charge one wireless hop; `mh_key` identifies the mobile endpoint
  /// and `mh_transmitted` says whether the MH was the sender (tx energy)
  /// or the receiver (rx energy).
  void charge_wireless(std::uint64_t mh_key, bool mh_transmitted);

  /// Charge one logical search (oracle mode). In broadcast-search mode
  /// the real (M-1) query messages are charged as fixed messages instead.
  void charge_search() noexcept { ++searches_; }

  [[nodiscard]] std::uint64_t fixed_msgs() const noexcept { return fixed_msgs_; }
  /// Wired packets charged; equals fixed_msgs() when nothing batches.
  [[nodiscard]] std::uint64_t wired_packets() const noexcept { return wired_packets_; }
  [[nodiscard]] std::uint64_t wireless_msgs() const noexcept { return wireless_msgs_; }
  [[nodiscard]] std::uint64_t searches() const noexcept { return searches_; }
  [[nodiscard]] std::uint64_t wireless_tx() const noexcept { return wireless_tx_; }
  [[nodiscard]] std::uint64_t wireless_rx() const noexcept { return wireless_rx_; }

  /// Total monetized cost under `p`:
  ///   packets*c_fixed + fixed*c_wired_msg + wireless*c_wireless +
  ///   searches*c_search. With no batching packets == fixed and the
  ///   default c_wired_msg = 0 reduces this to the paper's
  ///   fixed*c_fixed + wireless*c_wireless + searches*c_search.
  [[nodiscard]] double total(const CostParams& p) const noexcept;

  /// Battery drained at one MH (energy_tx/energy_rx weighted hops).
  [[nodiscard]] double energy_at(std::uint64_t mh_key, const CostParams& p) const noexcept;

  /// Battery drained across all MHs.
  [[nodiscard]] double total_energy(const CostParams& p) const noexcept;

  /// Wireless hops in which this MH participated (tx + rx).
  [[nodiscard]] std::uint64_t wireless_hops_at(std::uint64_t mh_key) const noexcept;

  /// Snapshot subtraction: `*this - baseline`, used to meter one phase.
  [[nodiscard]] CostLedger delta_since(const CostLedger& baseline) const;

  /// Fold another ledger's charges into this one (counters sum, per-MH
  /// energy counts merge). The sharded engine keeps one ledger per shard
  /// and folds them at harvest time.
  void merge_from(const CostLedger& other);

  void reset();

 private:
  struct EnergyCount {
    std::uint64_t tx = 0;
    std::uint64_t rx = 0;
  };

  std::uint64_t fixed_msgs_ = 0;
  std::uint64_t wired_packets_ = 0;
  std::uint64_t wireless_msgs_ = 0;
  std::uint64_t searches_ = 0;
  std::uint64_t wireless_tx_ = 0;
  std::uint64_t wireless_rx_ = 0;
  std::map<std::uint64_t, EnergyCount> per_mh_;
};

}  // namespace mobidist::cost
