#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "group/group.hpp"
#include "net/network.hpp"

namespace mobidist::multicast {

/// Exactly-once multicast to mobile recipients — the companion protocol
/// the paper cites as [1] (Acharya & Badrinath, ICDCS '93) and the
/// canonical client of the §2 handoff procedure.
///
/// Scheme: every message is flooded once over the wired mesh (M-1 fixed
/// messages) and buffered at every MSS. Each MSS keeps, for each local
/// recipient, a per-source delivery watermark; it forwards buffered
/// messages beyond the watermark over the local wireless link. When a
/// recipient moves (or disconnects and reconnects), its watermark
/// travels to the new MSS **inside the handoff state** — so delivery
/// resumes exactly where it stopped, with no searches and no duplicates,
/// regardless of how often the recipient moves.
///
/// Cost per message: (M-1)*c_fixed + |R|*c_wireless, versus
/// |R|*(c_search + c_wireless) for naive per-recipient search delivery —
/// the trade the A4 bench quantifies.
///
/// A recipient-side watermark provides defence-in-depth: even if an MSS
/// re-sends after a partially failed burst, the MH suppresses the
/// duplicate.
class McastService {
 public:
  /// `recipients` is the static delivery list (any subset of the MHs).
  McastService(net::Network& net, group::Group recipients,
               net::ProtocolId proto = net::protocol::kUserBase + 7);

  /// Publish one message from `source` MSS. Returns the message id used
  /// with the delivery monitor. Callable from inside the simulation.
  std::uint64_t publish(net::MssId source);

  [[nodiscard]] const group::Group& recipients() const noexcept { return recipients_; }
  [[nodiscard]] group::DeliveryMonitor& monitor() noexcept { return monitor_; }
  [[nodiscard]] const group::DeliveryMonitor& monitor() const noexcept { return monitor_; }

  /// Buffered log length at one MSS (GC is out of scope; the log is the
  /// replay source for late joiners).
  [[nodiscard]] std::size_t log_size(net::MssId at) const;
  /// Duplicates suppressed by recipient-side watermarks.
  [[nodiscard]] std::uint64_t duplicates_suppressed() const noexcept {
    return monitor_.duplicates_suppressed();
  }

 private:
  class StationAgent;
  class HostAgent;
  friend class StationAgent;
  friend class HostAgent;

  net::Network& net_;
  group::Group recipients_;
  group::DeliveryMonitor monitor_;
  net::ProtocolId proto_;
  std::vector<std::shared_ptr<StationAgent>> stations_;
  std::vector<std::shared_ptr<HostAgent>> hosts_;
  std::uint64_t next_msg_id_ = 1;  ///< global id for the monitor
};

}  // namespace mobidist::multicast
