#include "multicast/multicast.hpp"

#include <algorithm>
#include <set>

namespace mobidist::multicast {

using net::Envelope;
using net::MhId;
using net::MssId;

namespace {

/// One multicast message: (source, seq) is the dedup key; msg_id is the
/// monitor's global identifier.
struct McastData {
  MssId source = net::kInvalidMss;
  std::uint64_t seq = 0;
  std::uint64_t msg_id = 0;
};

/// Per-recipient delivery watermarks, keyed by source index. This is the
/// state that rides the handoff.
struct Watermarks {
  std::map<std::uint32_t, std::uint64_t> delivered_up_to;
};

}  // namespace

class McastService::StationAgent : public net::MssAgent {
 public:
  explicit StationAgent(McastService& owner) : owner_(owner) {}

  /// Setup-time registration of an initially-placed recipient.
  void seed(MhId mh) { watermarks_[mh]; }

  void publish_local(std::uint64_t msg_id) {
    const std::uint64_t seq = ++next_seq_;
    const McastData data{self(), seq, msg_id};
    accept(data);
    for (std::uint32_t i = 0; i < net().num_mss(); ++i) {
      const auto dest = static_cast<MssId>(i);
      if (dest == self()) continue;
      send_wired(dest, data);
    }
  }

  void on_message(const Envelope& env) override {
    const auto* data = net::body_as<McastData>(env);
    if (data == nullptr) return;
    accept(*data);
  }

  void on_mh_joined(MhId mh, MssId prev) override {
    if (!owner_.recipients_.contains(mh)) return;
    if (prev != net::kInvalidMss && prev != self()) {
      // Wait for the watermark to arrive with the handoff; replaying the
      // full log now would flood the MH with duplicates.
      awaiting_watermark_.insert(mh);
      return;
    }
    // First join (setup) — deliver the whole history.
    watermarks_[mh];  // default zeros
    deliver_pending(mh);
  }

  std::any on_handoff_out(MhId mh) override {
    if (!owner_.recipients_.contains(mh)) return {};
    Watermarks state;
    if (const auto it = watermarks_.find(mh); it != watermarks_.end()) {
      state = it->second;
      watermarks_.erase(it);
    }
    return state;
  }

  void on_handoff_in(MhId mh, MssId /*from*/, const std::any& state) override {
    const auto* marks = std::any_cast<Watermarks>(&state);
    if (marks == nullptr) return;
    watermarks_[mh] = *marks;
    awaiting_watermark_.erase(mh);
    if (net().mh(mh).current_mss() == self()) deliver_pending(mh);
  }

  void on_local_send_failed(MhId mh, const net::Body& body) override {
    // The recipient left mid-burst: roll its watermark back so the next
    // MSS (via handoff) resumes from the first undelivered message.
    const auto* data = body.get<McastData>();
    if (data == nullptr) return;
    const auto it = watermarks_.find(mh);
    if (it == watermarks_.end()) return;
    auto& mark = it->second.delivered_up_to[net::index(data->source)];
    mark = std::min(mark, data->seq - 1);
  }

  [[nodiscard]] std::size_t log_size() const noexcept { return log_.size(); }

 private:
  void accept(const McastData& data) {
    log_.push_back(data);
    for (const auto& [mh, marks] : watermarks_) {
      (void)marks;
      if (net().mh(mh).current_mss() == self()) deliver_pending(mh);
    }
  }

  void deliver_pending(MhId mh) {
    auto& marks = watermarks_[mh];
    // Replay, per source, everything beyond the watermark, in log order.
    for (const auto& data : log_) {
      auto& mark = marks.delivered_up_to[net::index(data.source)];
      if (data.seq <= mark) continue;
      mark = data.seq;  // optimistic; rolled back by on_local_send_failed
      send_local(mh, data);
    }
  }

  McastService& owner_;
  std::uint64_t next_seq_ = 0;
  std::vector<McastData> log_;
  std::map<MhId, Watermarks> watermarks_;
  std::set<MhId> awaiting_watermark_;
};

class McastService::HostAgent : public net::MhAgent {
 public:
  explicit HostAgent(McastService& owner) : owner_(owner) {}

  void on_message(const Envelope& env) override {
    const auto* data = net::body_as<McastData>(env);
    if (data == nullptr) return;
    auto& mark = seen_up_to_[net::index(data->source)];
    if (data->seq <= mark) {
      owner_.monitor_.duplicate();
      return;
    }
    mark = data->seq;
    owner_.monitor_.delivered(data->msg_id, self());
  }

 private:
  McastService& owner_;
  std::map<std::uint32_t, std::uint64_t> seen_up_to_;
};

McastService::McastService(net::Network& net, group::Group recipients, net::ProtocolId proto)
    : net_(net), recipients_(std::move(recipients)), proto_(proto) {
  stations_.reserve(net.num_mss());
  for (std::uint32_t i = 0; i < net.num_mss(); ++i) {
    auto agent = std::make_shared<StationAgent>(*this);
    stations_.push_back(agent);
    net.mss(static_cast<MssId>(i)).register_agent(proto, agent);
  }
  hosts_.resize(net.num_mh());
  for (const auto recipient : recipients_.members) {
    auto agent = std::make_shared<HostAgent>(*this);
    hosts_[net::index(recipient)] = agent;
    net.mh(recipient).register_agent(proto, agent);
    // Seed the initial placement's watermark (all-zero) at the starting
    // cell so history replays there.
    // Done lazily via deliver on first accept(); explicit seeding:
  }
  for (const auto recipient : recipients_.members) {
    const auto at = net.mh(recipient).last_mss();
    // Direct seeding mirrors Network's placement (no protocol traffic).
    stations_[net::index(at)]->seed(recipient);
  }
}

std::uint64_t McastService::publish(net::MssId source) {
  const std::uint64_t msg_id = next_msg_id_++;
  // The monitor treats the source MSS as "no sender MH": every recipient
  // must get it exactly once.
  monitor_.sent(msg_id, net::kInvalidMh);
  stations_[net::index(source)]->publish_local(msg_id);
  return msg_id;
}

std::size_t McastService::log_size(net::MssId at) const {
  return stations_[net::index(at)]->log_size();
}

}  // namespace mobidist::multicast
